//! The integrated Chopim system: multi-core host + FR-FCFS controllers on
//! one side of the channels, per-rank NDA controllers with host-side
//! shadow FSMs on the other, sharing the same DRAM devices cycle by cycle.
//!
//! Arbitration follows the paper (§III-B, §III-D):
//!
//! * host commands always take priority — NDA controllers only use cycles
//!   (and ranks) the host leaves free, enforced by the device model;
//! * NDA writes are gated by the configured [`WriteIssuePolicy`];
//! * every NDA launch travels over the channel as control-register write
//!   transactions issued by the host controller (the Fig.-10 launch cost);
//! * a shadow copy of every rank's NDA FSM lives host-side and is stepped
//!   from observable events only; [`ChopimSystem::fsm_in_sync`] asserts
//!   bit-equality, demonstrating the replicated-FSM mechanism.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use chopim_dram::{CommandKind, Cycle, DramConfig, DramSystem};
use chopim_host::{CoreConfig, MixId, OooCore};
use chopim_mapping::color::{ColoredAllocator, Region};
use chopim_mapping::{presets, AddressMapper, PartitionedMapping};
use chopim_nda::controller::{NdaRankController, NdaTickResult};
use chopim_nda::fsm::NdaFsm;
use chopim_nda::isa::NdaInstr;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::energy::{self, EnergyParams};
use crate::policy::WriteIssuePolicy;
use crate::report::SimReport;
use crate::runtime::{PendingLaunch, Runtime};
use crate::sched::{HostMc, HostTransaction, Issued, PagePolicy, SchedulerKind, TxMeta};

/// CPU cycles per DRAM cycle, as a rational (4 GHz / 1.2 GHz = 10/3).
const CPU_CLOCK_NUM: u32 = 10;
const CPU_CLOCK_DEN: u32 = 3;

/// Shared LLC miss-status registers (Table II: 48).
const LLC_MSHRS: usize = 48;

/// Top-level configuration.
#[derive(Debug, Clone)]
pub struct ChopimConfig {
    /// Memory geometry/timing (Table II defaults).
    pub dram: DramConfig,
    /// Banks per rank reserved for the shared/NDA region (paper: 1;
    /// 0 = fully shared banks).
    pub reserved_banks: usize,
    /// NDA write-issue policy.
    pub policy: WriteIssuePolicy,
    /// Host application mix (None = no host traffic).
    pub mix: Option<MixId>,
    /// Explicit per-core profiles, overriding `mix` (used by the ML time
    /// model to run an SVRG-shaped host alongside the NDAs).
    pub custom_profiles: Option<Vec<chopim_host::WorkloadProfile>>,
    /// Core microarchitecture.
    pub core: CoreConfig,
    /// RNG seed (cores, policy coins).
    pub seed: u64,
    /// Control-register write transactions per NDA instruction launch.
    pub launch_writes_per_instr: u32,
    /// Per-rank NDA instruction queue depth.
    pub nda_queue_cap: usize,
    /// Rank-partitioning baseline (Fig. 14): dedicate the upper half of
    /// each channel's ranks to NDAs and hide them from the host mapping.
    pub rank_partition: bool,
    /// Assert shadow-FSM equality while running (cheap; on by default).
    pub verify_fsm: bool,
    /// Ablation: NDA operands walked in physical-address order instead of
    /// Chopim's contiguous-column layout (see `Runtime::pa_order_walk`).
    pub nda_pa_order_walk: bool,
    /// Host transaction scheduling discipline (ablation).
    pub scheduler: SchedulerKind,
    /// Host row-buffer policy (ablation).
    pub page_policy: PagePolicy,
    /// Packetized memory interface (HMC-like): host requests pay an extra
    /// per-direction serialization latency of this many DRAM cycles, but
    /// the memory-side controller owns all scheduling so no replicated
    /// FSMs or host-side signaling are needed (paper §III intro, §VIII:
    /// packetized DRAM suffers 2-4x idle latency). `0` = traditional DDR.
    pub packetized_latency: u32,
    /// Event-horizon fast-forwarding: when every component is provably
    /// idle, leap the clock to the earliest cycle anything can happen
    /// instead of ticking through the gap. Produces bit-identical
    /// [`SimReport`]s to the naive cycle-by-cycle loop (enforced by the
    /// `ff_lockstep` equivalence tests); disable to run the naive loop.
    pub fast_forward: bool,
}

impl Default for ChopimConfig {
    fn default() -> Self {
        Self {
            dram: DramConfig::table_ii(),
            reserved_banks: 1,
            policy: WriteIssuePolicy::NextRankPredict,
            mix: None,
            custom_profiles: None,
            core: CoreConfig::default(),
            seed: 1,
            launch_writes_per_instr: 2,
            nda_queue_cap: 16,
            rank_partition: false,
            verify_fsm: true,
            nda_pa_order_walk: false,
            scheduler: SchedulerKind::default(),
            page_policy: PagePolicy::default(),
            packetized_latency: 0,
            fast_forward: true,
        }
    }
}

#[derive(Debug)]
struct LaunchInFlight {
    instr: NdaInstr,
    nda_idx: usize,
    writes_remaining: u32,
}

/// The complete simulated machine.
pub struct ChopimSystem {
    /// The configuration the system was built with.
    pub cfg: ChopimConfig,
    mem: DramSystem,
    mapper: Arc<PartitionedMapping>,
    cores: Vec<OooCore>,
    core_regions: Vec<Region>,
    mcs: Vec<HostMc>,
    ndas: Vec<NdaRankController>,
    /// Set when a launch was delivered to the NDA this cycle, forcing a
    /// full controller evaluation even if it looked idle or blocked.
    nda_poke: Vec<bool>,
    /// `channel * ranks_per_channel + rank` → index into `ndas`.
    nda_index: Vec<Option<usize>>,
    shadows: Vec<NdaFsm>,
    /// The runtime/API (allocate arrays, launch ops).
    pub runtime: Runtime,
    now: Cycle,
    cpu_accum: u32,
    cpu_cycles: u64,
    llc_outstanding: usize,
    fills: BinaryHeap<Reverse<(Cycle, usize, u64)>>,
    /// Packetized-mode ingress: transactions in flight toward the
    /// memory-side controller.
    ingress: VecDeque<(Cycle, HostTransaction)>,
    launch_stage: VecDeque<PendingLaunch>,
    launches: HashMap<u64, LaunchInFlight>,
    launch_events: BinaryHeap<Reverse<(Cycle, u64)>>,
    launch_inflight: Vec<usize>,
    next_launch: u64,
    policy_rng: StdRng,
    nda_instrs_completed: u64,
    /// Cycles actually executed by [`tick`](Self::tick) (diagnostics).
    ticks_executed: u64,
    /// Cycles leapt over by fast-forwarding (diagnostics).
    cycles_skipped: u64,
    /// Consecutive horizon computations that found work (busy streak).
    ff_streak: u32,
    /// Ticks to run before consulting the horizon again (busy-phase
    /// backoff; purely a heuristic — executing a cycle is always sound).
    ff_backoff: u32,
    /// Per-channel wake-hint throttles: idle MC ticks to let pass before
    /// computing another wake hint. When a saturated controller's hints
    /// keep landing on the very next cycle, the scan cannot pay for
    /// itself — back off exponentially and retry; a productive hint
    /// resets the throttle. Heuristic only: skipping a hint computation
    /// just means the naive tick runs, which is always sound.
    mc_hint_backoff: Vec<u32>,
    mc_hint_penalty: Vec<u32>,
    finalized: bool,
}

impl ChopimSystem {
    /// Build the machine.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (these are programmer inputs).
    pub fn new(cfg: ChopimConfig) -> Self {
        cfg.dram.validate().expect("invalid DRAM config");
        assert!(
            !(cfg.rank_partition && cfg.reserved_banks > 0),
            "rank partitioning and bank partitioning are alternative modes"
        );
        let mem = DramSystem::new(cfg.dram.clone());

        // Host mapping: full geometry in Chopim mode; the lower half of
        // each channel's ranks in rank-partitioning mode.
        let (host_geom, nda_ranks): (DramConfig, Vec<(usize, usize)>) = if cfg.rank_partition {
            let half = (cfg.dram.ranks_per_channel / 2).max(1);
            let geom = cfg.dram.clone().with_ranks(half);
            let ndas = (0..cfg.dram.channels)
                .flat_map(|c| (half..cfg.dram.ranks_per_channel).map(move |r| (c, r)))
                .collect();
            (geom, ndas)
        } else {
            let ndas = (0..cfg.dram.channels)
                .flat_map(|c| (0..cfg.dram.ranks_per_channel).map(move |r| (c, r)))
                .collect();
            (cfg.dram.clone(), ndas)
        };
        let inner = presets::skylake_like(&host_geom);
        let reserved = if cfg.rank_partition {
            0
        } else {
            cfg.reserved_banks
        };
        let mapper = Arc::new(PartitionedMapping::new(&host_geom, inner, reserved));

        // OS allocator: host rows below the shared boundary.
        let host_rows = (host_geom.rows as u64 * (host_geom.banks_per_rank() - reserved) as u64
            / host_geom.banks_per_rank() as u64) as u32;
        let allocator = ColoredAllocator::new(&host_geom, mapper.inner(), host_rows);

        let mut runtime = Runtime::new(
            cfg.dram.clone(),
            mapper.clone(),
            allocator,
            nda_ranks.clone(),
            cfg.rank_partition,
        );
        runtime.pa_order_walk = cfg.nda_pa_order_walk;

        // Host cores and their footprints.
        let mut cores = Vec::new();
        let mut core_regions = Vec::new();
        let profiles = cfg
            .custom_profiles
            .clone()
            .or_else(|| cfg.mix.map(|m| m.profiles()));
        if let Some(profiles) = profiles {
            for (i, profile) in profiles.into_iter().enumerate() {
                let rows = (profile.footprint_bytes / host_geom.system_row_bytes()).max(1);
                let region = runtime_alloc_host(&mut runtime, rows as usize);
                cores.push(OooCore::new(cfg.core, profile, cfg.seed ^ (i as u64) << 8));
                core_regions.push(region);
            }
        }

        let mcs = (0..cfg.dram.channels)
            .map(|c| {
                let mut mc = HostMc::new(
                    c,
                    cfg.dram.ranks_per_channel,
                    cfg.dram.bankgroups,
                    cfg.dram.banks_per_group,
                    cfg.dram.timing.refi,
                );
                mc.set_scheduler(cfg.scheduler);
                mc.set_page_policy(cfg.page_policy);
                mc
            })
            .collect();
        let ndas: Vec<NdaRankController> = nda_ranks
            .iter()
            .map(|&(c, r)| {
                NdaRankController::new(c, r, cfg.dram.banks_per_group, cfg.nda_queue_cap)
            })
            .collect();
        let shadows = ndas
            .iter()
            .map(|_| NdaFsm::new(cfg.nda_queue_cap))
            .collect();
        let n = ndas.len();
        let nchannels = cfg.dram.channels;
        let mut nda_index = vec![None; cfg.dram.channels * cfg.dram.ranks_per_channel];
        for (i, &(c, r)) in nda_ranks.iter().enumerate() {
            nda_index[c * cfg.dram.ranks_per_channel + r] = Some(i);
        }
        Self {
            policy_rng: StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15),
            cfg,
            mem,
            mapper,
            cores,
            core_regions,
            mcs,
            ndas,
            nda_poke: vec![false; n],
            nda_index,
            shadows,
            runtime,
            now: 0,
            cpu_accum: 0,
            cpu_cycles: 0,
            llc_outstanding: 0,
            fills: BinaryHeap::new(),
            ingress: VecDeque::new(),
            launch_stage: VecDeque::new(),
            launches: HashMap::new(),
            launch_events: BinaryHeap::new(),
            launch_inflight: vec![0; n],
            next_launch: 0,
            nda_instrs_completed: 0,
            ticks_executed: 0,
            cycles_skipped: 0,
            ff_streak: 0,
            ff_backoff: 0,
            mc_hint_backoff: vec![0; nchannels],
            mc_hint_penalty: vec![0; nchannels],
            finalized: false,
        }
    }

    /// Cycles executed one-by-one vs. leapt over (fast-forward telemetry).
    pub fn tick_stats(&self) -> (u64, u64) {
        (self.ticks_executed, self.cycles_skipped)
    }

    /// Current DRAM cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The device model (stats inspection).
    pub fn mem(&self) -> &DramSystem {
        &self.mem
    }

    /// The host address mapper.
    pub fn mapper(&self) -> &PartitionedMapping {
        &self.mapper
    }

    /// Record every DRAM command for offline validation with
    /// [`chopim_dram::TimingChecker`].
    pub fn enable_mem_trace(&mut self) {
        self.mem.enable_trace();
    }

    /// Take the recorded command trace.
    pub fn take_mem_trace(
        &mut self,
    ) -> Vec<(usize, Cycle, chopim_dram::Command, chopim_dram::Issuer)> {
        self.mem.take_trace()
    }

    /// Aggregate host IPC so far.
    pub fn host_ipc(&self) -> f64 {
        self.cores.iter().map(|c| c.ipc()).sum()
    }

    /// Scheduler queue dump for one channel (debugging aid).
    pub fn explain_mc(&self, ch: usize) -> String {
        self.mcs[ch].explain(&self.mem, self.now)
    }

    /// One-line internal state summary (debugging aid).
    pub fn debug_state(&self) -> String {
        format!(
            "llc={} fills={} core_out={:?} rq={:?} wq={:?} stage={} launches={}",
            self.llc_outstanding,
            self.fills.len(),
            self.cores
                .iter()
                .map(|c| c.outstanding_misses())
                .collect::<Vec<_>>(),
            self.mcs
                .iter()
                .map(|m| m.read_queue_len())
                .collect::<Vec<_>>(),
            self.mcs
                .iter()
                .map(|m| m.write_queue_len())
                .collect::<Vec<_>>(),
            self.launch_stage.len(),
            self.launches.len(),
        )
    }

    /// Advance one DRAM cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        self.ticks_executed += 1;

        // 1. Launch deliveries whose control writes completed.
        while let Some(&Reverse((t, id))) = self.launch_events.peek() {
            if t > now {
                break;
            }
            self.launch_events.pop();
            let lf = self.launches.get_mut(&id).expect("launch record");
            lf.writes_remaining -= 1;
            if lf.writes_remaining == 0 {
                let lf = self.launches.remove(&id).expect("present");
                self.launch_inflight[lf.nda_idx] -= 1;
                self.nda_poke[lf.nda_idx] = true;
                self.shadows[lf.nda_idx]
                    .launch(lf.instr.clone())
                    .unwrap_or_else(|_| panic!("shadow queue overflow"));
                self.ndas[lf.nda_idx]
                    .launch(lf.instr)
                    .unwrap_or_else(|_| panic!("NDA queue overflow"));
            }
        }

        // 2. Read fills due at the cores.
        while let Some(&Reverse((t, core, req))) = self.fills.peek() {
            if t > now {
                break;
            }
            self.fills.pop();
            self.cores[core].fill(req);
            self.llc_outstanding -= 1;
        }

        // 3. CPU cycles (4 GHz vs 1.2 GHz bus).
        self.cpu_accum += CPU_CLOCK_NUM;
        while self.cpu_accum >= CPU_CLOCK_DEN {
            self.cpu_accum -= CPU_CLOCK_DEN;
            self.cpu_cycles += 1;
            self.cpu_step(now);
        }

        // 4. Stage at most one NDA instruction launch per cycle.
        if self.launch_stage.is_empty() {
            let ndas = &self.ndas;
            let inflight = &self.launch_inflight;
            let space = |i: usize| ndas[i].fsm().queue_space().saturating_sub(inflight[i]);
            self.launch_stage
                .extend(self.runtime.next_launches(space, 1));
        }
        if let Some(head) = self.launch_stage.front() {
            let (ch, rank) = self.runtime.nda_ranks()[head.nda_idx];
            let k = self.cfg.launch_writes_per_instr.max(1);
            #[allow(clippy::collapsible_if)]
            if self.mcs[ch].read_queue_len() + k as usize <= 32 {
                let head = self.launch_stage.pop_front().expect("checked");
                let id = self.next_launch;
                self.next_launch += 1;
                // Control-register writes: a fixed row in the top bank.
                let ctrl_row = (self.cfg.dram.rows - 1) as u32;
                let flat = self.cfg.dram.banks_per_rank() - 1;
                for w in 0..k {
                    let addr = chopim_dram::DramAddress {
                        channel: ch,
                        rank,
                        bankgroup: flat / self.cfg.dram.banks_per_group,
                        bank: flat % self.cfg.dram.banks_per_group,
                        row: ctrl_row,
                        col: (id as u32 * k + w) % self.cfg.dram.lines_per_row() as u32,
                    };
                    let ok = self.mcs[ch].try_push_hinted(
                        HostTransaction {
                            addr,
                            is_write: true,
                            meta: TxMeta::Launch { launch: id },
                            arrival: now,
                        },
                        &self.mem,
                        now,
                    );
                    assert!(ok, "checked space above");
                }
                self.launch_inflight[head.nda_idx] += 1;
                self.launches.insert(
                    id,
                    LaunchInFlight {
                        instr: head.instr,
                        nda_idx: head.nda_idx,
                        writes_remaining: k,
                    },
                );
            }
        }

        // 4b. Packetized ingress: requests reach the memory-side
        // controller after the serialization latency.
        while let Some(&(ready, _)) = self.ingress.front() {
            if ready > now {
                break;
            }
            let (_, tx) = self.ingress.pop_front().expect("checked");
            if !self.mcs[tx.addr.channel].try_push_hinted(tx, &self.mem, now) {
                // Controller full: retry next cycle (keeps order).
                self.ingress.push_front((now + 1, tx));
                break;
            }
        }

        // 5. Host memory controllers (priority on the channel).
        for ch in 0..self.mcs.len() {
            // In fast-forward mode a valid wake-up hint proves the whole
            // controller tick is a no-op; the naive loop evaluates every
            // cycle (reference behavior).
            if self.cfg.fast_forward {
                if let Some(h) = self.mcs[ch].wake_hint() {
                    if now < h {
                        continue;
                    }
                }
            }
            let issued = self.mcs[ch].tick(&mut self.mem, now);
            if issued.is_none() && self.cfg.fast_forward {
                // Idle tick: compute and cache the wake-up so the
                // following no-op ticks are skipped outright — unless this
                // channel's recent hints all expired immediately (a
                // saturated controller is ready again within a cycle or
                // two), in which case back off before scanning again.
                if self.mc_hint_backoff[ch] > 0 {
                    self.mc_hint_backoff[ch] -= 1;
                } else {
                    let h = self.mcs[ch].next_event_cycle(&self.mem, now);
                    if h <= now + 1 {
                        let p = (self.mc_hint_penalty[ch] * 2).clamp(2, 32);
                        self.mc_hint_penalty[ch] = p;
                        self.mc_hint_backoff[ch] = p;
                    } else {
                        self.mc_hint_penalty[ch] = 0;
                    }
                }
            }
            if let Some(iss) = issued {
                // A host *row* command (ACT/PRE/PREA/REF) changed its
                // target rank's bank state: the rank's NDA plan may have
                // changed shape and become ready *earlier*, so its cached
                // wake-up must be re-derived. Column commands only push
                // timing registers forward — they can delay the NDA but
                // never make it ready sooner, so the (conservative) hint
                // stays sound and survives the host's column stream.
                if !matches!(iss.cmd.kind, CommandKind::Rd | CommandKind::Wr) {
                    let slot = ch * self.cfg.dram.ranks_per_channel + iss.cmd.rank;
                    if let Some(i) = self.nda_index[slot] {
                        self.ndas[i].invalidate_hint();
                    }
                }
                if let Issued {
                    data,
                    completed: Some(tx),
                    ..
                } = iss
                {
                    match tx.meta {
                        TxMeta::CoreRead { core, req } => {
                            // Packetized responses pay the return-path
                            // serialization latency too.
                            let ready =
                                data.end.expect("read") + Cycle::from(self.cfg.packetized_latency);
                            self.fills.push(Reverse((ready, core, req)));
                        }
                        TxMeta::Launch { launch } => {
                            self.launch_events
                                .push(Reverse((data.end.expect("write"), launch)));
                        }
                        TxMeta::CoreWrite => {}
                    }
                }
            }
        }

        // 6. NDA controllers (one per rank, independent command paths).
        // The write-throttle decision is passed lazily so policy coins are
        // drawn only for actual write attempts — which also makes idle and
        // timing-blocked cycles RNG-free, a precondition for skipping them
        // in fast-forward mode.
        {
            let Self {
                ndas,
                nda_poke,
                shadows,
                mcs,
                mem,
                policy_rng,
                cfg,
                runtime,
                nda_instrs_completed,
                ..
            } = self;
            for i in 0..ndas.len() {
                // In fast-forward mode, offer the controller a cycle only
                // when it could act: skip idle FSMs (until a launch pokes
                // them) and timing-blocked ones inside their cached
                // wake-up window. Both skips are exact — the controller
                // would evaluate to the same state without side effects
                // (its `next_access` is idempotent, and no policy coin is
                // drawn inside a timing window). The naive loop evaluates
                // every controller every cycle, preserving the reference
                // behavior the lockstep tests compare against.
                if cfg.fast_forward && !nda_poke[i] {
                    match ndas[i].desired_access() {
                        None => continue,
                        Some(_) => {
                            if let Some(h) = ndas[i].ready_hint() {
                                if now < h {
                                    continue;
                                }
                            }
                        }
                    }
                }
                let poked = nda_poke[i];
                nda_poke[i] = false;
                let (ch, rank) = (ndas[i].channel(), ndas[i].rank());
                let oldest = mcs[ch].oldest_read_rank();
                let policy = cfg.policy;
                let rng = &mut *policy_rng;
                let result = ndas[i].tick(mem, now, || policy.allow_write(oldest, rank, rng));
                if let NdaTickResult::Issued(cmd) = result {
                    // An NDA *row* command changed bank state under the
                    // host scheduler: a queued transaction's plan may now
                    // be ready earlier than the cached wake-up assumed.
                    // NDA column commands only move timing registers
                    // forward (pure delay), so the host hint stays sound
                    // and survives the NDA's column stream.
                    if !matches!(cmd.kind, CommandKind::Rd | CommandKind::Wr) {
                        mcs[ch].invalidate_wake_hint();
                    }
                }
                // Mirror onto the host-side shadow FSM. The controller
                // re-derives its desired access (normalizing FSM state)
                // exactly on launch-poke cycles and after column grants;
                // the shadow performs the same `next_access` calls at the
                // same points — anything more frequent is redundant
                // (`next_access` is idempotent between grants), anything
                // less would let the fingerprints drift.
                if poked {
                    let _ = shadows[i].next_access();
                }
                if let NdaTickResult::Issued(cmd) = result {
                    if matches!(cmd.kind, CommandKind::Rd | CommandKind::Wr) {
                        let acc = shadows[i]
                            .next_access()
                            .expect("shadow must want an access too");
                        debug_assert_eq!(
                            (acc.write, acc.row, acc.col),
                            (cmd.kind == CommandKind::Wr, cmd.row, cmd.col),
                            "shadow diverged from NDA controller"
                        );
                        shadows[i].commit(acc);
                        let _ = shadows[i].next_access();
                    }
                }
                // Completions (both sides pop identically).
                while let Some(id) = ndas[i].fsm_mut().pop_completed() {
                    let sid = shadows[i].pop_completed();
                    debug_assert_eq!(sid, Some(id));
                    *nda_instrs_completed += 1;
                    let _ = runtime.complete_instr(id, now);
                }
            }
        }

        // 7. Replicated-FSM equality check.
        if self.cfg.verify_fsm && now.is_multiple_of(1024) {
            assert!(
                self.fsm_in_sync(),
                "replicated FSMs diverged at cycle {now}"
            );
        }

        self.now += 1;
    }

    fn cpu_step(&mut self, now: Cycle) {
        let Self {
            cores,
            core_regions,
            mcs,
            mapper,
            mem,
            llc_outstanding,
            ingress,
            cfg,
            ..
        } = self;
        let mem: &DramSystem = mem;
        let pkt = Cycle::from(cfg.packetized_latency);
        for (i, core) in cores.iter_mut().enumerate() {
            let region = &core_regions[i];
            let mut sink = |req: chopim_host::MemRequest| -> bool {
                let offset = (req.line * 64) % region.len_bytes();
                let d = mapper.map_pa(region.pa_of(offset));
                let tx = if req.is_write {
                    HostTransaction {
                        addr: d,
                        is_write: true,
                        meta: TxMeta::CoreWrite,
                        arrival: now,
                    }
                } else {
                    if *llc_outstanding >= LLC_MSHRS {
                        return false;
                    }
                    HostTransaction {
                        addr: d,
                        is_write: false,
                        meta: TxMeta::CoreRead {
                            core: i,
                            req: req.id,
                        },
                        arrival: now,
                    }
                };
                let ok = if pkt > 0 {
                    // Packetized link: bounded in-flight window, then the
                    // serialization delay before the memory-side queue.
                    if ingress.len() >= 64 {
                        false
                    } else {
                        ingress.push_back((now + pkt, tx));
                        true
                    }
                } else {
                    mcs[d.channel].try_push_hinted(tx, mem, now)
                };
                if ok && !tx.is_write {
                    *llc_outstanding += 1;
                }
                ok
            };
            core.cpu_cycle(&mut sink);
        }
    }

    /// True when no NDA work is queued, staged, in flight, or executing.
    fn all_work_drained(&self) -> bool {
        self.runtime.quiescent()
            && self.launch_stage.is_empty()
            && self.launches.is_empty()
            && self.ndas.iter().all(|n| n.fsm().is_idle())
    }

    /// Earliest cycle at or after `self.now` (the first unexecuted cycle)
    /// at which any component could act or change state, assuming no
    /// other component acts first. Every executed tick re-computes this,
    /// so a conservative (too-early) answer only wastes a wake-up; the
    /// invariant that makes skipping sound is that no component may act
    /// strictly before its reported horizon.
    fn next_event_horizon(&mut self) -> Cycle {
        let now = self.now;
        // Cheap checks first: any hit means the next cycle must execute.
        if self.cores.iter().any(|c| !c.is_inert()) {
            return now;
        }
        if !self.launch_stage.is_empty() {
            return now;
        }
        {
            let ndas = &self.ndas;
            let inflight = &self.launch_inflight;
            let space = |i: usize| ndas[i].fsm().queue_space().saturating_sub(inflight[i]);
            if self.runtime.launch_ready(space) {
                return now;
            }
        }
        let mut h = Cycle::MAX;
        if let Some(&Reverse((t, _))) = self.launch_events.peek() {
            h = h.min(t);
        }
        if let Some(&Reverse((t, _, _))) = self.fills.peek() {
            h = h.min(t);
        }
        if let Some(&(t, _)) = self.ingress.front() {
            h = h.min(t);
        }
        for ch in 0..self.mcs.len() {
            h = h.min(self.mcs[ch].next_event_cycle(&self.mem, now));
            if h <= now {
                return now;
            }
        }
        for nda in &self.ndas {
            let Some(acc) = nda.desired_access() else {
                continue;
            };
            // A valid timing hint covers writes too: the controller
            // short-circuits before any policy evaluation until then.
            if let Some(hint) = nda.ready_hint() {
                if hint > now {
                    h = h.min(hint);
                    continue;
                }
            }
            if acc.write {
                let oldest = self.mcs[nda.channel()].oldest_read_rank();
                match self.cfg.policy.deterministic_decision(oldest, nda.rank()) {
                    // Stochastic policies flip a coin per attempt: every
                    // cycle with a pending write must execute.
                    None => return now,
                    // Deterministically throttled: the decision can only
                    // change when the read queues do, which is an event.
                    Some(false) => continue,
                    Some(true) => {}
                }
            }
            h = h.min(nda.next_event_cycle(&self.mem, now));
            if h <= now {
                return now;
            }
        }
        h.max(now)
    }

    /// Leap from `self.now` to `target`, applying exactly the state
    /// changes `target - self.now` naive ticks would have made on a
    /// provably idle system: the CPU clock divider advances in closed
    /// form, inert cores bulk-advance their counters, and deterministically
    /// throttled NDA writes accumulate their per-cycle stall counts.
    /// DRAM timing registers and the idle histograms are absolute-time
    /// state and need no per-cycle work at all.
    fn skip_to(&mut self, target: Cycle) {
        debug_assert!(target > self.now);
        let n = target - self.now;
        self.cycles_skipped += n;
        let total = u64::from(self.cpu_accum) + u64::from(CPU_CLOCK_NUM) * n;
        let steps = total / u64::from(CPU_CLOCK_DEN);
        self.cpu_accum = (total % u64::from(CPU_CLOCK_DEN)) as u32;
        self.cpu_cycles += steps;
        for core in &mut self.cores {
            core.advance_inert(steps);
        }
        for i in 0..self.ndas.len() {
            let Some(acc) = self.ndas[i].desired_access() else {
                continue;
            };
            if acc.write {
                let oldest = self.mcs[self.ndas[i].channel()].oldest_read_rank();
                let decision = self
                    .cfg
                    .policy
                    .deterministic_decision(oldest, self.ndas[i].rank());
                if decision == Some(false) {
                    // The naive loop evaluates (and counts) the throttled
                    // attempt each cycle timing allows the write. The
                    // cached `ready_hint` is only a lower bound (host
                    // column traffic may have delayed the access without
                    // clearing it), so recompute the exact ready time.
                    let from = self.ndas[i].next_event_cycle(&self.mem, self.now);
                    self.ndas[i].write_throttle_stalls += target.saturating_sub(from);
                }
            }
        }
        // The naive loop spot-checks FSM replication every 1024 cycles;
        // preserve that coverage when a skip crosses a boundary.
        if self.cfg.verify_fsm && self.now.next_multiple_of(1024) < target {
            assert!(
                self.fsm_in_sync(),
                "replicated FSMs diverged in [{}, {})",
                self.now,
                target
            );
        }
        self.now = target;
    }

    /// In fast-forward mode, leap to the next event horizon (never past
    /// `limit`). A no-op when the next cycle has work or the mode is off.
    ///
    /// During busy streaks — consecutive horizons that found work — the
    /// horizon computation is throttled with exponential backoff so fully
    /// loaded phases pay almost no fast-forward overhead. Executing a
    /// cycle that could have been skipped is always sound; only skipping
    /// a cycle with work would not be.
    fn maybe_skip(&mut self, limit: Cycle) {
        if !self.cfg.fast_forward || self.now >= limit {
            return;
        }
        if self.ff_backoff > 0 {
            self.ff_backoff -= 1;
            return;
        }
        let h = self.next_event_horizon().min(limit);
        if h > self.now {
            self.skip_to(h);
            self.ff_streak = 0;
        } else {
            self.ff_streak = (self.ff_streak + 1).min(6);
            self.ff_backoff = (1u32 << self.ff_streak) >> 1;
        }
    }

    /// Run for `cycles` DRAM cycles.
    pub fn run(&mut self, cycles: Cycle) {
        let end = self.now + cycles;
        while self.now < end {
            self.tick();
            self.maybe_skip(end);
        }
    }

    /// Run until every launched op has completed (or `max` cycles).
    /// Returns the cycles consumed.
    pub fn run_until_quiescent(&mut self, max: Cycle) -> Cycle {
        let start = self.now;
        while self.now - start < max {
            if self.all_work_drained() {
                break;
            }
            self.tick();
            // Quiescence can only flip inside a tick; re-check before
            // skipping so the consumed-cycle count matches the naive loop.
            if !self.all_work_drained() {
                self.maybe_skip(start + max);
            }
        }
        self.now - start
    }

    /// Run for `cycles`, relaunching the NDA workload whenever it
    /// completes so concurrent access persists for the whole window — the
    /// paper's methodology (§VI). Returns the number of completions.
    pub fn run_relaunching(
        &mut self,
        cycles: Cycle,
        mut make: impl FnMut(&mut Runtime) -> crate::runtime::OpId,
    ) -> u64 {
        let end = self.now + cycles;
        let mut op = make(&mut self.runtime);
        let mut completions = 0;
        while self.now < end {
            if self.runtime.op_done(op) {
                completions += 1;
                op = make(&mut self.runtime);
            }
            self.tick();
            // The relaunch must happen on the cycle after the completing
            // tick, exactly as in the naive loop — never skip over it.
            if !self.runtime.op_done(op) {
                self.maybe_skip(end);
            }
        }
        completions
    }

    /// Run until `op` completes (or `max` cycles). Returns cycles consumed.
    pub fn run_until_op(&mut self, op: crate::runtime::OpId, max: Cycle) -> Cycle {
        let start = self.now;
        while !self.runtime.op_done(op) && self.now - start < max {
            self.tick();
            if !self.runtime.op_done(op) {
                self.maybe_skip(start + max);
            }
        }
        self.now - start
    }

    /// True while every host-side shadow FSM matches its rank's FSM.
    pub fn fsm_in_sync(&self) -> bool {
        self.ndas
            .iter()
            .zip(&self.shadows)
            .all(|(n, s)| n.fsm().fingerprint() == s.fingerprint())
    }

    /// NDA instructions completed so far.
    pub fn nda_instrs_completed(&self) -> u64 {
        self.nda_instrs_completed
    }

    /// Build the metrics report for the window `[0, now)`.
    pub fn report(&mut self) -> SimReport {
        if !self.finalized {
            self.mem.finalize(self.now);
            self.finalized = true;
        }
        let dram = self.mem.stats();
        let per_core_ipc: Vec<f64> = self.cores.iter().map(|c| c.ipc()).collect();
        let host_ipc = per_core_ipc.iter().sum();
        let seconds = self.now as f64 / 1.2e9;
        let nda_bytes = (dram.reads_nda + dram.writes_nda) * 64;
        let host_bytes = (dram.reads_host + dram.writes_host) * 64;
        let core_bytes: u64 = self
            .cores
            .iter()
            .map(|c| (c.reads_sent() + c.writes_sent()) * 64)
            .sum();

        // Idealized NDA bandwidth: all rank cycles the host leaves idle.
        let mut ideal_cycles = 0u64;
        let mut idle_histograms = Vec::new();
        for &(c, r) in self.runtime.nda_ranks() {
            let rs = &self.mem.channel(c).stats.ranks[r];
            ideal_cycles += self.now.saturating_sub(rs.host_data_cycles);
            idle_histograms.push(rs.idle.clone());
        }
        // Each busy data cycle moves `line_bytes / bl` bytes; utilization
        // is the cycle ratio.
        let nda_bw_utilization = if ideal_cycles == 0 {
            0.0
        } else {
            dram.nda_data_cycles as f64 / ideal_cycles as f64
        };

        let n_pes = self.cfg.dram.chips_per_rank * self.runtime.nda_ranks().len();
        let energy = energy::compute(
            &EnergyParams::default(),
            &dram,
            &self.runtime.pe_activity,
            self.now,
            self.cfg.dram.line_bytes(),
            n_pes,
        );
        let (hits, misses) = self
            .mcs
            .iter()
            .fold((0, 0), |(h, m), mc| (h + mc.row_hits(), m + mc.row_misses));
        let (lat, nreads) = self.mcs.iter().fold((0, 0), |(l, n), mc| {
            (l + mc.read_latency_sum, n + mc.reads_completed)
        });
        SimReport {
            cycles: self.now,
            cpu_cycles: self.cpu_cycles,
            host_ipc,
            per_core_ipc,
            nda_bytes,
            nda_bw_gbs: if seconds > 0.0 {
                nda_bytes as f64 / seconds / 1e9
            } else {
                0.0
            },
            host_bw_gbs: if seconds > 0.0 {
                host_bytes as f64 / seconds / 1e9
            } else {
                0.0
            },
            core_bw_gbs: if seconds > 0.0 {
                core_bytes as f64 / seconds / 1e9
            } else {
                0.0
            },
            nda_bw_utilization,
            idle_histograms,
            host_row_hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            avg_read_latency: if nreads > 0 {
                lat as f64 / nreads as f64
            } else {
                0.0
            },
            dram,
            energy,
            nda_instrs_completed: self.nda_instrs_completed,
            nda_write_throttle_stalls: self.ndas.iter().map(|n| n.write_throttle_stalls).sum(),
        }
    }
}

/// Allocate a host footprint, shrinking on exhaustion (tests use small
/// pools).
fn runtime_alloc_host(runtime: &mut Runtime, rows: usize) -> Region {
    runtime.alloc_host_region(rows)
}
