//! NDA write-issue policies (paper §III-B).
//!
//! NDA *reads* always issue opportunistically; *writes* cause expensive
//! write→read turnarounds on the rank I/O, so Chopim throttles them:
//!
//! * [`WriteIssuePolicy::IssueIfIdle`] — the aggressive baseline: issue
//!   whenever the rank can take the command;
//! * [`WriteIssuePolicy::Stochastic`] — flip a weighted coin per attempt
//!   (no signaling needed; the coin weight trades host vs NDA throughput);
//! * [`WriteIssuePolicy::NextRankPredict`] — inhibit writes to the rank
//!   targeted by the *oldest outstanding host read* in that channel's
//!   transaction queue (the paper's recommended mechanism).

use rand::rngs::StdRng;
use rand::Rng;

/// How NDA writes are gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteIssuePolicy {
    /// Issue whenever the rank is free (no throttling).
    IssueIfIdle,
    /// Issue with probability `num/den` per attempt.
    Stochastic {
        /// Numerator of the issue probability.
        num: u32,
        /// Denominator of the issue probability.
        den: u32,
    },
    /// Stall writes to the rank the oldest queued host read targets.
    NextRankPredict,
}

impl WriteIssuePolicy {
    /// The paper's evaluated stochastic settings (1/4 and 1/16).
    pub fn stochastic(num: u32, den: u32) -> Self {
        assert!(num <= den && den > 0, "probability must be in [0, 1]");
        WriteIssuePolicy::Stochastic { num, den }
    }

    /// Decide whether a write to `rank` may issue now.
    ///
    /// `oldest_read_rank` is the rank of the oldest host read transaction
    /// queued on the channel (the next-rank predictor's input), and only
    /// applies while the write buffer is draining.
    pub fn allow_write(
        &self,
        oldest_read_rank: Option<usize>,
        rank: usize,
        rng: &mut StdRng,
    ) -> bool {
        match *self {
            WriteIssuePolicy::IssueIfIdle => true,
            WriteIssuePolicy::Stochastic { num, den } => rng.gen_ratio(num, den),
            WriteIssuePolicy::NextRankPredict => oldest_read_rank != Some(rank),
        }
    }

    /// The throttling decision when it is a pure function of the
    /// predictor input, or `None` for policies that flip a coin per
    /// attempt. The event-horizon fast-forward uses this: deterministic
    /// decisions stay fixed until the transaction queues change (an
    /// event), so throttled cycles can be skipped in bulk, while
    /// stochastic policies force per-cycle evaluation.
    pub fn deterministic_decision(
        &self,
        oldest_read_rank: Option<usize>,
        rank: usize,
    ) -> Option<bool> {
        match *self {
            WriteIssuePolicy::IssueIfIdle => Some(true),
            WriteIssuePolicy::Stochastic { .. } => None,
            WriteIssuePolicy::NextRankPredict => Some(oldest_read_rank != Some(rank)),
        }
    }

    /// Short display name as used in the paper's figure legends.
    pub fn label(&self) -> String {
        match *self {
            WriteIssuePolicy::IssueIfIdle => "Issue_if_idle".to_string(),
            WriteIssuePolicy::Stochastic { num, den } => {
                format!("Stochastic_issue ({num}/{den})")
            }
            WriteIssuePolicy::NextRankPredict => "Predict_next_rank".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn issue_if_idle_always_allows() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(WriteIssuePolicy::IssueIfIdle.allow_write(Some(0), 0, &mut rng));
    }

    #[test]
    fn next_rank_blocks_only_predicted_rank() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = WriteIssuePolicy::NextRankPredict;
        assert!(!p.allow_write(Some(1), 1, &mut rng));
        assert!(p.allow_write(Some(1), 0, &mut rng));
        assert!(
            p.allow_write(None, 1, &mut rng),
            "no queued reads: no inhibit"
        );
    }

    #[test]
    fn stochastic_rate_approximates_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = WriteIssuePolicy::stochastic(1, 4);
        let allowed = (0..40_000)
            .filter(|_| p.allow_write(None, 0, &mut rng))
            .count() as f64
            / 40_000.0;
        assert!((allowed - 0.25).abs() < 0.02, "measured {allowed}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = WriteIssuePolicy::stochastic(5, 4);
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(
            WriteIssuePolicy::stochastic(1, 16).label(),
            "Stochastic_issue (1/16)"
        );
        assert_eq!(
            WriteIssuePolicy::NextRankPredict.label(),
            "Predict_next_rank"
        );
    }
}
