//! # chopim-core
//!
//! The integrated Chopim system — the paper's primary contribution — built
//! on the workspace substrates:
//!
//! * [`sched`] — per-channel FR-FCFS host memory controller with write
//!   drain and refresh;
//! * [`policy`] — NDA write-issue policies: issue-if-idle, stochastic
//!   issue, next-rank prediction (paper §III-B);
//! * [`system`] — the cycle-accurate machine: multi-core host, host MCs,
//!   per-rank NDA controllers, and host-side *shadow FSMs* kept
//!   bit-identical to demonstrate the replicated-FSM coordination of
//!   §III-D. The machine is **channel-sharded**: a front-end plus one
//!   shard per channel exchanging cycle-stamped messages, executed in
//!   conservative-lookahead windows — serially or on a worker pool
//!   (`ChopimConfig::sim_threads`) with bit-identical results;
//! * [`runtime`] — the §V runtime/API: colored system-row allocation,
//!   per-tenant [`Session`]s with builder-style op
//!   submission (with the Fig.-10 granularity knob), dependency-aware
//!   op-graph staging, macro ops, host-mediated reduction, QoS-class
//!   arbitration over an O(active) ready index, and a batched-submission
//!   executor with admission control ([`runtime::JobGraph`]);
//! * [`energy`] — the Table-II energy model;
//! * [`report`] — the metrics the figures plot.
//!
//! ## Quick example
//!
//! ```
//! use chopim_core::prelude::*;
//!
//! let mut sys = ChopimSystem::new(ChopimConfig::default());
//! let sess = sys.runtime.default_session();
//! let x = sys.runtime.vector(1 << 12, Sharing::Shared);
//! let y = sys.runtime.vector(1 << 12, Sharing::Shared);
//! sys.runtime.write_vector(x, &vec![2.0; 1 << 12]);
//! // y = x on the NDAs, then c = y . y gated on it by a DAG edge.
//! let cp = sess
//!     .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
//!     .submit();
//! let dot = sess
//!     .elementwise(&mut sys.runtime, Opcode::Dot, vec![], vec![y, y], None)
//!     .after(cp)
//!     .submit();
//! sys.drive(dot, 4_000_000);
//! assert!(sys.runtime.op_done(dot));
//! assert_eq!(sys.runtime.read_vector(y)[0], 2.0);
//! assert_eq!(sys.runtime.op_result(dot), Some(4.0 * (1 << 12) as f32));
//! ```
//!
//! ## Snapshots and traces
//!
//! [`ChopimSystem::snapshot`](system::ChopimSystem::snapshot) captures
//! the full deterministic machine state as a versioned binary image and
//! [`ChopimSystem::resume`](system::ChopimSystem::resume) continues from
//! it bit-identically (see `docs/SNAPSHOT_FORMAT.md`);
//! `CHOPIM_TRACE=<path>` or
//! [`ChopimConfig::trace_path`](system::ChopimConfig::trace_path)
//! records a compact replayable event trace (`docs/TRACE_FORMAT.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
#[doc(hidden)]
pub mod exchange;
mod par;
pub mod policy;
pub mod report;
pub mod runtime;
pub mod sched;
mod shard;
pub mod system;

/// Everything needed to build and run experiments.
pub mod prelude {
    pub use crate::energy::{EnergyParams, EnergyReport, PeActivity};
    pub use crate::policy::WriteIssuePolicy;
    pub use crate::report::{FaultReport, SimReport, TenantReport};
    #[allow(deprecated)]
    pub use crate::runtime::OpId;
    pub use crate::runtime::{
        JobGraph, LaunchOpts, MatId, OpBuilder, OpHandle, OpStatus, QosClass, Runtime, Session,
        Sharing, SubmitError, TenantLimits, Ticket, VecId,
    };
    pub use crate::sched::{PagePolicy, SchedulerKind};
    pub use crate::system::{ChopimConfig, ChopimSystem, SnapshotError, StreamId, Waitable};
    pub use chopim_dram::{DramConfig, FaultPlan, IdleBucket, TimingParams};
    pub use chopim_host::{CoreConfig, MixId, WorkloadProfile};
    pub use chopim_mapping::color::Color;
    pub use chopim_nda::isa::Opcode;
}

pub use prelude::*;
