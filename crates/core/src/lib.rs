//! # chopim-core
//!
//! The integrated Chopim system — the paper's primary contribution — built
//! on the workspace substrates:
//!
//! * [`sched`] — per-channel FR-FCFS host memory controller with write
//!   drain and refresh;
//! * [`policy`] — NDA write-issue policies: issue-if-idle, stochastic
//!   issue, next-rank prediction (paper §III-B);
//! * [`system`] — the cycle-accurate machine: multi-core host, host MCs,
//!   per-rank NDA controllers, and host-side *shadow FSMs* kept
//!   bit-identical to demonstrate the replicated-FSM coordination of
//!   §III-D. The machine is **channel-sharded**: a front-end plus one
//!   shard per channel exchanging cycle-stamped messages, executed in
//!   conservative-lookahead windows — serially or on a worker pool
//!   (`ChopimConfig::sim_threads`) with bit-identical results;
//! * [`runtime`] — the §V runtime/API: colored system-row allocation,
//!   coarse-grain op launches (with the Fig.-10 granularity knob), macro
//!   ops, host-mediated reduction;
//! * [`energy`] — the Table-II energy model;
//! * [`report`] — the metrics the figures plot.
//!
//! ## Quick example
//!
//! ```
//! use chopim_core::prelude::*;
//!
//! let mut sys = ChopimSystem::new(ChopimConfig::default());
//! let x = sys.runtime.vector(1 << 12, Sharing::Shared);
//! let y = sys.runtime.vector(1 << 12, Sharing::Shared);
//! sys.runtime.write_vector(x, &vec![2.0; 1 << 12]);
//! let op = sys.runtime.launch_elementwise(
//!     Opcode::Copy, vec![], vec![x], Some(y), LaunchOpts::default());
//! sys.run_until_op(op, 2_000_000);
//! assert_eq!(sys.runtime.read_vector(y)[0], 2.0);
//! ```

pub mod energy;
mod par;
pub mod policy;
pub mod report;
pub mod runtime;
pub mod sched;
mod shard;
pub mod system;

/// Everything needed to build and run experiments.
pub mod prelude {
    pub use crate::energy::{EnergyParams, EnergyReport, PeActivity};
    pub use crate::policy::WriteIssuePolicy;
    pub use crate::report::SimReport;
    pub use crate::runtime::{LaunchOpts, MatId, OpId, Runtime, Sharing, VecId};
    pub use crate::sched::{PagePolicy, SchedulerKind};
    pub use crate::system::{ChopimConfig, ChopimSystem};
    pub use chopim_dram::{DramConfig, IdleBucket, TimingParams};
    pub use chopim_host::{CoreConfig, MixId, WorkloadProfile};
    pub use chopim_mapping::color::Color;
    pub use chopim_nda::isa::Opcode;
}

pub use prelude::*;
