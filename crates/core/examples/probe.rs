//! Diagnostic probe: run the most memory-intensive mix host-only and dump
//! the machine's vital signs every window — useful when tuning profiles
//! or investigating scheduler behavior.
//!
//! ```sh
//! cargo run --release -p chopim-core --example probe
//! ```

use chopim_core::prelude::*;

fn main() {
    let mut sys = ChopimSystem::new(ChopimConfig {
        dram: DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh()),
        mix: Some(MixId::new(1).expect("mix1")),
        ..ChopimConfig::default()
    });
    for k in 0..5 {
        sys.run(20_000);
        let r = sys.report();
        eprintln!(
            "[{k}] ipc={:.3} reads={} writes={} acts={} lat={:.1} hit={:.2}",
            r.host_ipc,
            r.dram.reads_host,
            r.dram.writes_host,
            r.dram.acts,
            r.avg_read_latency,
            r.host_row_hit_rate
        );
        eprintln!("    {}", sys.debug_state());
        if k == 4 {
            eprintln!("{}", sys.explain_mc(0));
        }
    }
}
