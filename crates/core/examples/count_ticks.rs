//! Diagnostic: executed vs skipped cycles per scenario shape.
use chopim_core::prelude::*;

fn main() {
    for (name, gran) in [
        ("axpy_whole", None),
        ("axpy_g128", Some(128)),
        ("axpy_g32", Some(32)),
        ("axpy_g16", Some(16)),
    ] {
        let cfg = ChopimConfig::default();
        let mut sys = ChopimSystem::new(cfg);
        let x = sys.runtime.vector(1 << 16, Sharing::Shared);
        let y = sys.runtime.vector(1 << 16, Sharing::Shared);
        let opts = LaunchOpts {
            granularity_lines: gran,
            barrier_per_chunk: true,
        };
        let sess = sys.runtime.default_session();
        sys.spawn_stream(sess, move |rt, s| {
            s.elementwise(rt, Opcode::Axpy, vec![0.5], vec![x], Some(y))
                .opts(opts)
                .submit()
        });
        sys.run(60_000);
        let (t, s) = sys.tick_stats();
        println!("{name}: executed {t} skipped {s}");
    }
}
