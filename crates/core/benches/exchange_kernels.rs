//! Micro-benchmarks for the cross-shard message-exchange kernels: the
//! double-buffered [`FlatFifo`] handoff the shard ingress runs every
//! barrier, and the [`MergeQueue`] batch-merge that replaced the
//! front-end's per-message `BinaryHeap` sifts. The heap variant is kept
//! as the comparison point — these are the per-window costs the flat
//! exchange exists to avoid (`make perf-micro`, or
//! `cargo bench -p chopim-core`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use criterion::{criterion_group, criterion_main, Criterion};

use chopim_core::exchange::{FlatFifo, MergeQueue};

/// One barrier's worth of fills from each of 8 shards, as the engine
/// produces them: cycle-stamped runs, sorted within a shard but not
/// across shards.
fn shard_runs(round: u64) -> Vec<Vec<(u64, usize, u64)>> {
    (0..8u64)
        .map(|sh| {
            (0..16u64)
                .map(|k| (round * 64 + k * 3 + sh % 3, sh as usize, k))
                .collect()
        })
        .collect()
}

fn bench_flat_fifo(c: &mut Criterion) {
    c.bench_function("flat_fifo absorb+drain (8x16 msgs, steady state)", |b| {
        let mut q: FlatFifo<(u64, usize, u64)> = FlatFifo::default();
        let mut out: Vec<(u64, usize, u64)> = Vec::new();
        let mut round = 0u64;
        b.iter(|| {
            for run in shard_runs(round) {
                out.extend(run);
                q.absorb(&mut out);
            }
            let mut acc = 0u64;
            while let Some(&(t, _, _)) = q.pop_front() {
                acc ^= t;
            }
            round += 1;
            acc
        })
    });
}

fn bench_merge_queue_vs_heap(c: &mut Criterion) {
    c.bench_function("merge_queue absorb+seal+pop (8 runs/barrier)", |b| {
        let mut mq: MergeQueue<(u64, usize, u64)> = MergeQueue::default();
        let mut round = 0u64;
        b.iter(|| {
            for mut run in shard_runs(round) {
                mq.absorb_run(&mut run);
            }
            mq.seal();
            let mut acc = 0u64;
            while let Some(&(t, _, _)) = mq.pop() {
                acc ^= t;
            }
            round += 1;
            acc
        })
    });
    c.bench_function("binary_heap push+pop (8 runs/barrier, old path)", |b| {
        let mut heap: BinaryHeap<Reverse<(u64, usize, u64)>> = BinaryHeap::new();
        let mut round = 0u64;
        b.iter(|| {
            for run in shard_runs(round) {
                for m in run {
                    heap.push(Reverse(m));
                }
            }
            let mut acc = 0u64;
            while let Some(Reverse((t, _, _))) = heap.pop() {
                acc ^= t;
            }
            round += 1;
            acc
        })
    });
}

criterion_group!(benches, bench_flat_fifo, bench_merge_queue_vs_heap);
criterion_main!(benches);
