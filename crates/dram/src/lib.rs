//! # chopim-dram
//!
//! A cycle-level DDR4 main-memory model: channels, ranks, bank groups and
//! banks with the full JEDEC timing-constraint set used by the Chopim paper
//! (Table II of "Near Data Acceleration with Concurrent Host Access",
//! ISCA 2020), including read/write bus-turnaround and rank-to-rank switch
//! penalties — the effects the paper's mechanisms target.
//!
//! The crate is deliberately *policy free*: it validates and applies DRAM
//! commands and tracks state/statistics, while schedulers (host FR-FCFS and
//! the per-rank NDA controllers) live in higher-level crates.
//!
//! ## Quick example
//!
//! ```
//! use chopim_dram::{Command, CommandKind, DramConfig, DramSystem, Issuer};
//!
//! let cfg = DramConfig::table_ii();
//! let mut mem = DramSystem::new(cfg);
//! let act = Command::act(0, 0, 0, 42);
//! assert!(mem.can_issue(0, &act, Issuer::Host, 0));
//! mem.issue(0, &act, Issuer::Host, 0).unwrap();
//! // The bank needs tRCD before a column read can issue.
//! let rd = Command::rd(0, 0, 0, 42, 3);
//! assert!(!mem.can_issue(0, &rd, Issuer::Host, 1));
//! let t = mem.config().timing.rcd as u64;
//! assert!(mem.can_issue(0, &rd, Issuer::Host, t));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod bank;
pub mod channel;
pub mod checker;
pub mod codec;
pub mod command;
pub mod config;
pub mod fault;
pub mod perfcount;
pub mod rank;
pub mod stats;
pub mod system;
pub mod timing;
pub mod trace;

pub use addr::DramAddress;
pub use bank::{BankRef, BankState, Banks, CLOSED_ROW};
pub use channel::Channel;
pub use checker::{CheckError, TimingChecker};
pub use command::{Command, CommandKind, Issuer};
pub use config::DramConfig;
pub use fault::FaultPlan;
pub use rank::{BankGroupTiming, Rank};
pub use stats::{DramStats, IdleBucket, IdleHistogram, RankStats};
pub use system::{DataReady, DramSystem, IssueError};
pub use timing::TimingParams;

/// Simulation time measured in DRAM bus-clock cycles (1.2 GHz for the
/// paper's DDR4-2400 configuration).
pub type Cycle = u64;
