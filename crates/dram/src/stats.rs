//! Activity statistics: per-rank command/energy event counts, data-bus
//! occupancy split by issuer, bus-turnaround counts, and the rank idle-gap
//! histogram that reproduces Fig. 2 of the paper.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::command::Issuer;
use crate::Cycle;

/// Idle-gap length buckets, matching Fig. 2 of the paper
/// ("Rank idle-time breakdown vs. idleness granularity").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IdleBucket {
    /// Rank busy with host activity.
    Busy,
    /// Idle gaps of 1–10 cycles.
    G1to10,
    /// Idle gaps of 10–100 cycles.
    G10to100,
    /// Idle gaps of 100–250 cycles.
    G100to250,
    /// Idle gaps of 250–500 cycles.
    G250to500,
    /// Idle gaps of 500–1000 cycles.
    G500to1000,
    /// Idle gaps longer than 1000 cycles.
    G1000plus,
}

impl IdleBucket {
    /// All buckets in display order (busy first, like the paper's legend).
    pub const ALL: [IdleBucket; 7] = [
        IdleBucket::Busy,
        IdleBucket::G1to10,
        IdleBucket::G10to100,
        IdleBucket::G100to250,
        IdleBucket::G250to500,
        IdleBucket::G500to1000,
        IdleBucket::G1000plus,
    ];

    /// Bucket for an idle gap of `gap` cycles.
    pub fn of_gap(gap: Cycle) -> Self {
        match gap {
            0 => IdleBucket::Busy,
            1..=10 => IdleBucket::G1to10,
            11..=100 => IdleBucket::G10to100,
            101..=250 => IdleBucket::G100to250,
            251..=500 => IdleBucket::G250to500,
            501..=1000 => IdleBucket::G500to1000,
            _ => IdleBucket::G1000plus,
        }
    }

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            IdleBucket::Busy => "Busy",
            IdleBucket::G1to10 => "1-10",
            IdleBucket::G10to100 => "10-100",
            IdleBucket::G100to250 => "100-250",
            IdleBucket::G250to500 => "250-500",
            IdleBucket::G500to1000 => "500-1000",
            IdleBucket::G1000plus => "1000-",
        }
    }
}

/// Histogram of rank idle time, bucketed by the length of the idle gap the
/// cycles belong to (Fig. 2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IdleHistogram {
    cycles: [u64; 7],
}

impl IdleHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account an idle gap of `gap` cycles (all cycles land in the gap's
    /// length bucket, as in the paper).
    pub fn record_gap(&mut self, gap: Cycle) {
        if gap == 0 {
            return;
        }
        let idx = Self::index(IdleBucket::of_gap(gap));
        self.cycles[idx] += gap;
    }

    /// Account `n` busy cycles.
    pub fn record_busy(&mut self, n: Cycle) {
        self.cycles[Self::index(IdleBucket::Busy)] += n;
    }

    fn index(b: IdleBucket) -> usize {
        IdleBucket::ALL
            .iter()
            .position(|x| *x == b)
            .expect("bucket in ALL")
    }

    /// Raw cycle count in `bucket`.
    pub fn cycles_in(&self, bucket: IdleBucket) -> u64 {
        self.cycles[Self::index(bucket)]
    }

    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Fraction of cycles per bucket, in [`IdleBucket::ALL`] order.
    /// Returns zeros when nothing was recorded.
    pub fn fractions(&self) -> [f64; 7] {
        let total = self.total();
        let mut out = [0.0; 7];
        if total == 0 {
            return out;
        }
        for (i, c) in self.cycles.iter().enumerate() {
            out[i] = *c as f64 / total as f64;
        }
        out
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &IdleHistogram) {
        for i in 0..7 {
            self.cycles[i] += other.cycles[i];
        }
    }

    /// Serialize the seven bucket counters (snapshot support).
    #[cold]
    pub fn encode_state(&self, w: &mut ByteWriter) {
        for &c in &self.cycles {
            w.varint(c);
        }
    }

    /// Overwrite the bucket counters from a snapshot.
    ///
    /// # Errors
    ///
    /// Propagates truncation from the reader.
    #[cold]
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        for c in &mut self.cycles {
            *c = r.varint()?;
        }
        Ok(())
    }
}

/// Per-rank counters: command/event counts by issuer and data-bus
/// occupancy, plus host-activity tracking for the idle histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankStats {
    /// ACT commands issued by the host.
    pub acts_host: u64,
    /// ACT commands issued by the NDA controller.
    pub acts_nda: u64,
    /// Read bursts by the host.
    pub reads_host: u64,
    /// Read bursts by the NDA.
    pub reads_nda: u64,
    /// Write bursts by the host.
    pub writes_host: u64,
    /// Write bursts by the NDA.
    pub writes_nda: u64,
    /// All-bank refreshes.
    pub refreshes: u64,
    /// Data-bus cycles carrying host data for this rank.
    pub host_data_cycles: u64,
    /// Data-bus cycles carrying NDA-local data for this rank.
    pub nda_data_cycles: u64,
    /// Idle-gap histogram over *host* activity (Fig. 2 definition).
    pub idle: IdleHistogram,
    /// Read<->write direction changes on this rank's I/O.
    pub turnarounds: u64,
    host_busy_until: Cycle,
    any_activity: bool,
    last_col_was_write: Option<bool>,
}

impl RankStats {
    /// Mark host activity on this rank over `[from, to)`, folding the
    /// preceding idle gap into the histogram.
    pub fn mark_host_activity(&mut self, from: Cycle, to: Cycle) {
        debug_assert!(to >= from);
        if !self.any_activity {
            // Ignore the cold-start gap before the first access.
            self.any_activity = true;
            self.host_busy_until = from;
        }
        if from > self.host_busy_until {
            self.idle.record_gap(from - self.host_busy_until);
            self.idle.record_busy(to - from);
            self.host_busy_until = to;
        } else if to > self.host_busy_until {
            self.idle.record_busy(to - self.host_busy_until);
            self.host_busy_until = to;
        }
    }

    /// Close the histogram at simulation end `end`, accounting the final
    /// trailing gap.
    pub fn finalize(&mut self, end: Cycle) {
        if self.any_activity && end > self.host_busy_until {
            self.idle.record_gap(end - self.host_busy_until);
            self.host_busy_until = end;
        }
    }

    /// Serialize all counters including the private activity-tracking
    /// state behind the idle histogram (snapshot support).
    #[cold]
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.varint(self.acts_host);
        w.varint(self.acts_nda);
        w.varint(self.reads_host);
        w.varint(self.reads_nda);
        w.varint(self.writes_host);
        w.varint(self.writes_nda);
        w.varint(self.refreshes);
        w.varint(self.host_data_cycles);
        w.varint(self.nda_data_cycles);
        self.idle.encode_state(w);
        w.varint(self.turnarounds);
        w.varint(self.host_busy_until);
        w.bool(self.any_activity);
        match self.last_col_was_write {
            None => w.u8(0),
            Some(false) => w.u8(1),
            Some(true) => w.u8(2),
        }
    }

    /// Overwrite all counters from a snapshot.
    ///
    /// # Errors
    ///
    /// Propagates truncation / corrupt-field errors from the reader.
    #[cold]
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.acts_host = r.varint()?;
        self.acts_nda = r.varint()?;
        self.reads_host = r.varint()?;
        self.reads_nda = r.varint()?;
        self.writes_host = r.varint()?;
        self.writes_nda = r.varint()?;
        self.refreshes = r.varint()?;
        self.host_data_cycles = r.varint()?;
        self.nda_data_cycles = r.varint()?;
        self.idle.decode_state(r)?;
        self.turnarounds = r.varint()?;
        self.host_busy_until = r.varint()?;
        self.any_activity = r.bool()?;
        self.last_col_was_write = match r.u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            _ => return Err(CodecError::Corrupt("last_col_was_write tag")),
        };
        Ok(())
    }
}

/// Per-channel statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelStats {
    /// One entry per rank in the channel.
    pub ranks: Vec<RankStats>,
    /// Host column commands total (reads + writes).
    pub host_cols: u64,
    /// NDA column commands total.
    pub nda_cols: u64,
    /// Injected bit-flips the ECC model corrected on this channel.
    pub ecc_corrected: u64,
    /// Injected bit-flips the ECC model detected but could not correct.
    pub ecc_uncorrectable: u64,
}

impl ChannelStats {
    /// Stats for a channel with `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        Self {
            ranks: (0..ranks).map(|_| RankStats::default()).collect(),
            host_cols: 0,
            nda_cols: 0,
            ecc_corrected: 0,
            ecc_uncorrectable: 0,
        }
    }

    pub(crate) fn record_act(&mut self, rank: usize, issuer: Issuer, now: Cycle) {
        match issuer {
            Issuer::Host => {
                self.ranks[rank].acts_host += 1;
                self.ranks[rank].mark_host_activity(now, now + 1);
            }
            Issuer::Nda => self.ranks[rank].acts_nda += 1,
        }
    }

    pub(crate) fn record_row_cmd(&mut self, rank: usize, issuer: Issuer, now: Cycle) {
        if issuer == Issuer::Host {
            self.ranks[rank].mark_host_activity(now, now + 1);
        }
    }

    pub(crate) fn record_col(
        &mut self,
        rank: usize,
        issuer: Issuer,
        is_write: bool,
        data_start: Cycle,
        data_end: Cycle,
        now: Cycle,
    ) {
        let burst = data_end - data_start;
        let r = &mut self.ranks[rank];
        match (issuer, is_write) {
            (Issuer::Host, false) => {
                r.reads_host += 1;
                r.host_data_cycles += burst;
                self.host_cols += 1;
            }
            (Issuer::Host, true) => {
                r.writes_host += 1;
                r.host_data_cycles += burst;
                self.host_cols += 1;
            }
            (Issuer::Nda, false) => {
                r.reads_nda += 1;
                r.nda_data_cycles += burst;
                self.nda_cols += 1;
            }
            (Issuer::Nda, true) => {
                r.writes_nda += 1;
                r.nda_data_cycles += burst;
                self.nda_cols += 1;
            }
        }
        if issuer == Issuer::Host {
            r.mark_host_activity(now, now + 1);
            r.mark_host_activity(data_start, data_end);
        }
        let r = &mut self.ranks[rank];
        if let Some(last) = r.last_col_was_write {
            if last != is_write {
                r.turnarounds += 1;
            }
        }
        r.last_col_was_write = Some(is_write);
    }

    pub(crate) fn record_refresh(&mut self, rank: usize, now: Cycle, done: Cycle) {
        self.ranks[rank].refreshes += 1;
        // Refresh counts as host activity (host MC schedules it).
        self.ranks[rank].mark_host_activity(now, done);
    }

    /// Rank-I/O turnarounds summed over this channel's ranks.
    pub fn turnarounds(&self) -> u64 {
        self.ranks.iter().map(|r| r.turnarounds).sum()
    }

    /// Close all rank histograms at `end`.
    pub fn finalize(&mut self, end: Cycle) {
        for r in &mut self.ranks {
            r.finalize(end);
        }
    }

    /// Serialize the channel-level counters and every rank's stats
    /// (snapshot support).
    #[cold]
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.varint(self.ranks.len() as u64);
        for r in &self.ranks {
            r.encode_state(w);
        }
        w.varint(self.host_cols);
        w.varint(self.nda_cols);
        w.varint(self.ecc_corrected);
        w.varint(self.ecc_uncorrectable);
    }

    /// Overwrite the counters from a snapshot.
    ///
    /// # Errors
    ///
    /// Rejects a rank count that disagrees with this channel's geometry.
    #[cold]
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let n = r.varint_usize()?;
        if n != self.ranks.len() {
            return Err(CodecError::ConfigMismatch);
        }
        for rank in &mut self.ranks {
            rank.decode_state(r)?;
        }
        self.host_cols = r.varint()?;
        self.nda_cols = r.varint()?;
        self.ecc_corrected = r.varint()?;
        self.ecc_uncorrectable = r.varint()?;
        Ok(())
    }
}

/// System-wide statistics view, aggregated over channels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DramStats {
    /// Total host read bursts.
    pub reads_host: u64,
    /// Total host write bursts.
    pub writes_host: u64,
    /// Total NDA read bursts.
    pub reads_nda: u64,
    /// Total NDA write bursts.
    pub writes_nda: u64,
    /// Total ACTs (host + NDA).
    pub acts: u64,
    /// Total ACTs issued by NDA controllers.
    pub acts_nda: u64,
    /// Total refreshes.
    pub refreshes: u64,
    /// Data-bus cycles carrying host data, summed over ranks.
    pub host_data_cycles: u64,
    /// Data-bus cycles carrying NDA data, summed over ranks.
    pub nda_data_cycles: u64,
    /// Rank I/O direction turnarounds, summed over ranks.
    pub turnarounds: u64,
    /// Injected bit-flips the ECC model corrected, summed over channels.
    pub ecc_corrected: u64,
    /// Injected bit-flips detected as uncorrectable, summed over channels.
    pub ecc_uncorrectable: u64,
}

impl DramStats {
    /// Fold one channel's statistics into this aggregate. Both the
    /// monolithic [`crate::DramSystem`] and the channel-sharded engine
    /// (which owns its [`Channel`](crate::Channel)s directly) build their
    /// system view through this, so the two always aggregate identically.
    pub fn add_channel(&mut self, ch: &ChannelStats) {
        self.turnarounds += ch.turnarounds();
        self.ecc_corrected += ch.ecc_corrected;
        self.ecc_uncorrectable += ch.ecc_uncorrectable;
        for r in &ch.ranks {
            self.reads_host += r.reads_host;
            self.writes_host += r.writes_host;
            self.reads_nda += r.reads_nda;
            self.writes_nda += r.writes_nda;
            self.acts += r.acts_host + r.acts_nda;
            self.acts_nda += r.acts_nda;
            self.refreshes += r.refreshes;
            self.host_data_cycles += r.host_data_cycles;
            self.nda_data_cycles += r.nda_data_cycles;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_match_figure_legend() {
        assert_eq!(IdleBucket::of_gap(1), IdleBucket::G1to10);
        assert_eq!(IdleBucket::of_gap(10), IdleBucket::G1to10);
        assert_eq!(IdleBucket::of_gap(11), IdleBucket::G10to100);
        assert_eq!(IdleBucket::of_gap(100), IdleBucket::G10to100);
        assert_eq!(IdleBucket::of_gap(250), IdleBucket::G100to250);
        assert_eq!(IdleBucket::of_gap(500), IdleBucket::G250to500);
        assert_eq!(IdleBucket::of_gap(1000), IdleBucket::G500to1000);
        assert_eq!(IdleBucket::of_gap(1001), IdleBucket::G1000plus);
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let mut h = IdleHistogram::new();
        h.record_busy(50);
        h.record_gap(30);
        h.record_gap(200);
        let f = h.fractions();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(h.total(), 280);
        assert_eq!(h.cycles_in(IdleBucket::G10to100), 30);
        assert_eq!(h.cycles_in(IdleBucket::G100to250), 200);
    }

    #[test]
    fn rank_activity_gap_tracking() {
        let mut r = RankStats::default();
        r.mark_host_activity(100, 101); // first access: no cold-start gap
        r.mark_host_activity(101, 105); // contiguous: busy
        r.mark_host_activity(205, 206); // 100-cycle gap
        r.finalize(1000);
        assert_eq!(r.idle.cycles_in(IdleBucket::Busy), 6);
        assert_eq!(r.idle.cycles_in(IdleBucket::G10to100), 100);
        assert_eq!(r.idle.cycles_in(IdleBucket::G500to1000), 794);
    }

    #[test]
    fn overlapping_activity_does_not_double_count() {
        let mut r = RankStats::default();
        r.mark_host_activity(10, 20);
        r.mark_host_activity(15, 25); // overlaps 5
        assert_eq!(r.idle.cycles_in(IdleBucket::Busy), 15);
    }

    #[test]
    fn turnaround_counting_is_per_rank() {
        let mut s = ChannelStats::new(2);
        s.record_col(0, Issuer::Host, false, 10, 14, 0);
        s.record_col(0, Issuer::Host, false, 14, 18, 4);
        assert_eq!(s.turnarounds(), 0);
        // A write in the *other* rank is not a turnaround on rank 0's I/O.
        s.record_col(1, Issuer::Nda, true, 20, 24, 8);
        assert_eq!(s.turnarounds(), 0);
        // But an NDA write on rank 0 after host reads is.
        s.record_col(0, Issuer::Nda, true, 30, 34, 14);
        assert_eq!(s.turnarounds(), 1);
        s.record_col(0, Issuer::Host, false, 40, 44, 20);
        assert_eq!(s.turnarounds(), 2);
    }
}
