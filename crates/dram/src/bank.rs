//! Per-bank state machines and timing registers, structure-of-arrays.
//!
//! The FR-FCFS scan, the eager-close sweep, the refresh precondition and
//! the event-horizon computation all walk *every bank of a rank* asking
//! one narrow question ("which row is open?", "when may the next ACT
//! issue?"). An array-of-structs layout makes those sweeps strided
//! gather loops; keeping each register class in its own contiguous array
//! turns them into dense slice scans the compiler autovectorizes (see
//! `benches/timing_kernels.rs`).
//!
//! Row-buffer state is a single `u32` per bank — [`CLOSED_ROW`]
//! (`u32::MAX`, never a legal row number) means precharged, anything
//! else is the open row. [`BankRef`] wraps one index and re-exposes the
//! old per-bank accessors (`state`, `open_row`, `is_row_hit`) so point
//! queries read the same as before the layout change.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::Cycle;

/// Row-buffer sentinel: no row open (bank precharged). `u32::MAX` is
/// never a legal row number (row counts are far below 2^32).
pub const CLOSED_ROW: u32 = u32::MAX;

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BankState {
    /// All rows precharged.
    #[default]
    Closed,
    /// `row` is latched in the row buffer.
    Opened {
        /// The currently open row.
        row: u32,
    },
}

/// The banks of one channel, flat-indexed, structure-of-arrays: one
/// contiguous register file per command class plus the open-row array.
#[derive(Debug, Clone, Default)]
pub struct Banks {
    /// Open row per bank, [`CLOSED_ROW`] when precharged.
    pub(crate) open_row: Vec<u32>,
    /// Earliest cycle an ACT may issue (tRP after PRE, tRC after prior
    /// ACT).
    pub(crate) next_act: Vec<Cycle>,
    /// Earliest cycle a PRE may issue (tRAS after ACT, tRTP after RD,
    /// write recovery after WR).
    pub(crate) next_pre: Vec<Cycle>,
    /// Earliest cycle a RD may issue (tRCD after ACT).
    pub(crate) next_rd: Vec<Cycle>,
    /// Earliest cycle a WR may issue (tRCD after ACT).
    pub(crate) next_wr: Vec<Cycle>,
}

impl Banks {
    /// `n` freshly precharged banks with no timing debt.
    pub fn new(n: usize) -> Self {
        Self {
            open_row: vec![CLOSED_ROW; n],
            next_act: vec![0; n],
            next_pre: vec![0; n],
            next_rd: vec![0; n],
            next_wr: vec![0; n],
        }
    }

    /// Number of banks.
    #[inline]
    pub fn len(&self) -> usize {
        self.open_row.len()
    }

    /// True when there are no banks (degenerate geometry).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.open_row.is_empty()
    }

    /// A view of one bank by flat index.
    #[inline]
    pub fn get(&self, idx: usize) -> BankRef<'_> {
        BankRef { banks: self, idx }
    }

    /// The open-row array for a flat index range (the vectorizable scan
    /// surface — compare against [`CLOSED_ROW`]).
    #[inline]
    pub fn open_rows(&self, range: std::ops::Range<usize>) -> &[u32] {
        &self.open_row[range]
    }

    /// Latch `row` (ACT). Caller must have validated state and timing.
    pub(crate) fn do_activate(&mut self, idx: usize, row: u32) {
        debug_assert!(self.open_row[idx] == CLOSED_ROW, "ACT to open bank");
        self.open_row[idx] = row;
    }

    /// Precharge (PRE / PREA / REF prep).
    pub(crate) fn do_precharge(&mut self, idx: usize) {
        self.open_row[idx] = CLOSED_ROW;
    }

    /// Serialize every register array (snapshot support).
    #[cold]
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.u32_slice(&self.open_row);
        w.cycle_slice(&self.next_act);
        w.cycle_slice(&self.next_pre);
        w.cycle_slice(&self.next_rd);
        w.cycle_slice(&self.next_wr);
    }

    /// Overwrite this slab's registers from a snapshot.
    ///
    /// # Errors
    ///
    /// Rejects inputs whose array lengths disagree with this slab's
    /// geometry (snapshot from a different configuration).
    #[cold]
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let open_row = r.u32_vec()?;
        let next_act = r.cycle_vec()?;
        let next_pre = r.cycle_vec()?;
        let next_rd = r.cycle_vec()?;
        let next_wr = r.cycle_vec()?;
        let n = self.open_row.len();
        if [&next_act, &next_pre, &next_rd, &next_wr]
            .iter()
            .any(|v| v.len() != n)
            || open_row.len() != n
        {
            return Err(CodecError::ConfigMismatch);
        }
        self.open_row = open_row;
        self.next_act = next_act;
        self.next_pre = next_pre;
        self.next_rd = next_rd;
        self.next_wr = next_wr;
        Ok(())
    }
}

/// A read view of one bank inside a [`Banks`] slab. Re-exposes the
/// per-bank accessors so point queries (`channel.bank(r, bg, b)
/// .open_row()`) are unchanged by the structure-of-arrays layout.
#[derive(Debug, Clone, Copy)]
pub struct BankRef<'a> {
    banks: &'a Banks,
    idx: usize,
}

impl BankRef<'_> {
    /// Current row-buffer state.
    #[inline]
    pub fn state(&self) -> BankState {
        match self.banks.open_row[self.idx] {
            CLOSED_ROW => BankState::Closed,
            row => BankState::Opened { row },
        }
    }

    /// The open row, if any.
    #[inline]
    pub fn open_row(&self) -> Option<u32> {
        match self.banks.open_row[self.idx] {
            CLOSED_ROW => None,
            row => Some(row),
        }
    }

    /// True if `row` is currently latched (a row hit for column
    /// commands).
    #[inline]
    pub fn is_row_hit(&self, row: u32) -> bool {
        self.banks.open_row[self.idx] == row
    }

    /// Earliest cycle an ACT may issue.
    #[inline]
    pub fn next_act(&self) -> Cycle {
        self.banks.next_act[self.idx]
    }

    /// Earliest cycle a PRE may issue.
    #[inline]
    pub fn next_pre(&self) -> Cycle {
        self.banks.next_pre[self.idx]
    }

    /// Earliest cycle a RD may issue.
    #[inline]
    pub fn next_rd(&self) -> Cycle {
        self.banks.next_rd[self.idx]
    }

    /// Earliest cycle a WR may issue.
    #[inline]
    pub fn next_wr(&self) -> Cycle {
        self.banks.next_wr[self.idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_closed() {
        let b = Banks::new(4);
        assert_eq!(b.len(), 4);
        assert_eq!(b.get(0).state(), BankState::Closed);
        assert_eq!(b.get(0).open_row(), None);
        assert!(!b.get(0).is_row_hit(0));
        assert!(b.open_rows(0..4).iter().all(|&r| r == CLOSED_ROW));
    }

    #[test]
    fn activate_then_precharge() {
        let mut b = Banks::new(2);
        b.do_activate(1, 17);
        assert_eq!(b.get(1).open_row(), Some(17));
        assert_eq!(b.get(1).state(), BankState::Opened { row: 17 });
        assert!(b.get(1).is_row_hit(17));
        assert!(!b.get(1).is_row_hit(18));
        // The neighbour is untouched.
        assert_eq!(b.get(0).open_row(), None);
        b.do_precharge(1);
        assert_eq!(b.get(1).state(), BankState::Closed);
    }

    #[test]
    #[should_panic(expected = "ACT to open bank")]
    #[cfg(debug_assertions)]
    fn double_activate_panics_in_debug() {
        let mut b = Banks::new(1);
        b.do_activate(0, 1);
        b.do_activate(0, 2);
    }
}
