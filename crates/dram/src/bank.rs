//! Per-bank state machine and timing registers.

use crate::Cycle;

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BankState {
    /// All rows precharged.
    #[default]
    Closed,
    /// `row` is latched in the row buffer.
    Opened {
        /// The currently open row.
        row: u32,
    },
}

/// One DRAM bank: row-buffer state plus the earliest-allowed issue times of
/// each command class that is constrained at bank scope.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    state: BankState,
    /// Earliest cycle an ACT may issue (tRP after PRE, tRC after prior ACT).
    pub next_act: Cycle,
    /// Earliest cycle a PRE may issue (tRAS after ACT, tRTP after RD,
    /// write recovery after WR).
    pub next_pre: Cycle,
    /// Earliest cycle a RD may issue (tRCD after ACT).
    pub next_rd: Cycle,
    /// Earliest cycle a WR may issue (tRCD after ACT).
    pub next_wr: Cycle,
}

impl Bank {
    /// A freshly precharged bank with no timing debt.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current row-buffer state.
    #[inline]
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    #[inline]
    pub fn open_row(&self) -> Option<u32> {
        match self.state {
            BankState::Opened { row } => Some(row),
            BankState::Closed => None,
        }
    }

    /// True if `row` is currently latched (a row hit for column commands).
    #[inline]
    pub fn is_row_hit(&self, row: u32) -> bool {
        self.open_row() == Some(row)
    }

    /// Latch `row` (ACT). Caller must have validated state and timing.
    pub(crate) fn do_activate(&mut self, row: u32) {
        debug_assert!(matches!(self.state, BankState::Closed), "ACT to open bank");
        self.state = BankState::Opened { row };
    }

    /// Precharge (PRE / PREA / REF prep).
    pub(crate) fn do_precharge(&mut self) {
        self.state = BankState::Closed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_closed() {
        let b = Bank::new();
        assert_eq!(b.state(), BankState::Closed);
        assert_eq!(b.open_row(), None);
        assert!(!b.is_row_hit(0));
    }

    #[test]
    fn activate_then_precharge() {
        let mut b = Bank::new();
        b.do_activate(17);
        assert_eq!(b.open_row(), Some(17));
        assert!(b.is_row_hit(17));
        assert!(!b.is_row_hit(18));
        b.do_precharge();
        assert_eq!(b.state(), BankState::Closed);
    }

    #[test]
    #[should_panic(expected = "ACT to open bank")]
    #[cfg(debug_assertions)]
    fn double_activate_panics_in_debug() {
        let mut b = Bank::new();
        b.do_activate(1);
        b.do_activate(2);
    }
}
