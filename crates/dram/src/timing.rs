//! DDR4 timing parameters (all in DRAM bus-clock cycles).
//!
//! The defaults reproduce Table II of the Chopim paper exactly; refresh
//! parameters (not listed in the table) use standard JEDEC values for an
//! 8 Gb DDR4-2400 device and are documented in `DESIGN.md`.

/// DDR4 timing parameters, in bus-clock cycles.
///
/// Field names follow JEDEC/Ramulator conventions with the leading `t`
/// dropped (`rcd` is tRCD). The Chopim values come from Table II of the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// Burst length on the data bus, in cycles (BL8 on a DDR bus = 4).
    pub bl: u32,
    /// Column-to-column delay, different bank group (tCCD_S).
    pub ccds: u32,
    /// Column-to-column delay, same bank group (tCCD_L).
    pub ccdl: u32,
    /// Rank-to-rank data-bus switch penalty (tRTRS).
    pub rtrs: u32,
    /// CAS (read) latency (tCL).
    pub cl: u32,
    /// RAS-to-CAS delay (tRCD).
    pub rcd: u32,
    /// Row precharge time (tRP).
    pub rp: u32,
    /// CAS write latency (tCWL).
    pub cwl: u32,
    /// Row active time (tRAS).
    pub ras: u32,
    /// Row cycle time (tRC).
    pub rc: u32,
    /// Read-to-precharge delay (tRTP).
    pub rtp: u32,
    /// Write-to-read turnaround, different bank group (tWTR_S).
    pub wtrs: u32,
    /// Write-to-read turnaround, same bank group (tWTR_L).
    pub wtrl: u32,
    /// Write recovery time (tWR).
    pub wr: u32,
    /// Activate-to-activate, different bank group (tRRD_S).
    pub rrds: u32,
    /// Activate-to-activate, same bank group (tRRD_L).
    pub rrdl: u32,
    /// Four-activate window (tFAW).
    pub faw: u32,
    /// Average refresh interval (tREFI). `0` disables refresh.
    pub refi: u32,
    /// Refresh cycle time (tRFC).
    pub rfc: u32,
}

impl TimingParams {
    /// The exact DDR4 timing set of the Chopim paper, Table II
    /// (DDR4-2400, 1.2 GHz bus clock), plus standard 8 Gb refresh timing.
    pub fn ddr4_2400() -> Self {
        Self {
            bl: 4,
            ccds: 4,
            ccdl: 6,
            rtrs: 2,
            cl: 16,
            rcd: 16,
            rp: 16,
            cwl: 12,
            ras: 39,
            rc: 55,
            rtp: 9,
            wtrs: 3,
            wtrl: 9,
            wr: 18,
            rrds: 4,
            rrdl: 6,
            faw: 26,
            // Not in Table II: tREFI = 7.8 us, tRFC(8 Gb) = 350 ns.
            refi: 9360,
            rfc: 420,
        }
    }

    /// Same timing with refresh disabled — useful for microbenchmarks that
    /// want deterministic idle-gap structure.
    pub fn ddr4_2400_no_refresh() -> Self {
        Self {
            refi: 0,
            ..Self::ddr4_2400()
        }
    }

    /// True when periodic refresh is enabled (`refi != 0`).
    #[inline]
    pub fn refresh_enabled(&self) -> bool {
        self.refi != 0
    }

    /// Delay from a read command to the earliest write command on the same
    /// channel (bus turnaround; covers all ranks).
    #[inline]
    pub fn read_to_write(&self) -> u32 {
        self.cl + self.bl + self.rtrs - self.cwl
    }

    /// Delay from a write command to the earliest read command in the same
    /// rank. `same_bankgroup` selects tWTR_L over tWTR_S.
    #[inline]
    pub fn write_to_read_same_rank(&self, same_bankgroup: bool) -> u32 {
        self.cwl + self.bl + if same_bankgroup { self.wtrl } else { self.wtrs }
    }

    /// Delay from a write command to the earliest read command in a
    /// *different* rank (bus hand-off only; no internal WTR needed).
    #[inline]
    pub fn write_to_read_diff_rank(&self) -> u32 {
        (self.cwl + self.bl + self.rtrs).saturating_sub(self.cl)
    }

    /// Delay from a column command to the earliest same-type column command
    /// in a *different* rank (data-bus occupancy plus tRTRS).
    #[inline]
    pub fn col_to_col_diff_rank(&self) -> u32 {
        self.bl + self.rtrs
    }

    /// Earliest precharge after a write command (same bank).
    #[inline]
    pub fn write_to_pre(&self) -> u32 {
        self.cwl + self.bl + self.wr
    }

    /// Sanity-check internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// relationship (e.g. `tRC < tRAS + tRP`).
    pub fn validate(&self) -> Result<(), String> {
        if self.rc < self.ras + self.rp {
            return Err(format!(
                "tRC ({}) must cover tRAS ({}) + tRP ({})",
                self.rc, self.ras, self.rp
            ));
        }
        if self.ccdl < self.ccds {
            return Err("tCCD_L must be >= tCCD_S".to_string());
        }
        if self.rrdl < self.rrds {
            return Err("tRRD_L must be >= tRRD_S".to_string());
        }
        if self.wtrl < self.wtrs {
            return Err("tWTR_L must be >= tWTR_S".to_string());
        }
        if self.bl == 0 || self.cl == 0 || self.cwl == 0 {
            return Err("bl/cl/cwl must be nonzero".to_string());
        }
        if self.faw < self.rrds {
            return Err("tFAW must be >= tRRD_S".to_string());
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values_are_consistent() {
        TimingParams::ddr4_2400().validate().unwrap();
    }

    #[test]
    fn turnaround_formulas_match_paper_intuition() {
        let t = TimingParams::ddr4_2400();
        // Write-to-read is the expensive direction (paper §II): the write
        // happens at the end of the transaction, so WR->RD in the same rank
        // must exceed RD->WR on the bus.
        assert!(t.write_to_read_same_rank(true) > t.read_to_write());
        assert!(t.write_to_read_same_rank(false) > t.read_to_write());
        // Cross-rank write-to-read only pays bus hand-off.
        assert!(t.write_to_read_diff_rank() < t.write_to_read_same_rank(false));
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut t = TimingParams::ddr4_2400();
        t.rc = 10;
        assert!(t.validate().is_err());
        let mut t = TimingParams::ddr4_2400();
        t.ccdl = 1;
        assert!(t.validate().is_err());
        let mut t = TimingParams::ddr4_2400();
        t.wtrl = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn no_refresh_preset_disables_refi_only() {
        let a = TimingParams::ddr4_2400();
        let b = TimingParams::ddr4_2400_no_refresh();
        assert_eq!(b.refi, 0);
        assert_eq!(a.cl, b.cl);
        assert_eq!(a.rfc, b.rfc);
    }
}
