//! Hand-rolled binary codec for snapshots and traces.
//!
//! The workspace builds offline (no crates.io), so this is the in-tree
//! replacement for a serialization crate, sized to exactly what the
//! snapshot (`docs/SNAPSHOT_FORMAT.md`) and trace
//! (`docs/TRACE_FORMAT.md`) formats need:
//!
//! * little-endian fixed-width integers,
//! * LEB128 varints (unsigned, plus zigzag for signed deltas),
//! * a framed container — 4-byte magic, `u32` version, `u64` payload
//!   length, payload, FNV-1a checksum over everything before it,
//! * typed decode errors so corrupt or truncated inputs are rejected
//!   instead of misread.
//!
//! Encoders never fail; all fallibility lives on the [`ByteReader`] side.
//!
//! ```
//! use chopim_dram::codec::{ByteReader, ByteWriter, read_framed, write_framed};
//!
//! let mut w = ByteWriter::new();
//! w.varint(300);
//! w.f32(1.5);
//! let framed = write_framed(*b"DEMO", 1, w.finish());
//! let payload = read_framed(*b"DEMO", 1, &framed).unwrap();
//! let mut r = ByteReader::new(payload);
//! assert_eq!(r.varint().unwrap(), 300);
//! assert_eq!(r.f32().unwrap(), 1.5);
//! assert!(r.is_empty());
//! ```

#![warn(clippy::cast_possible_truncation)]

use crate::Cycle;

/// Why a snapshot or trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the expected data (truncated file).
    Truncated,
    /// The 4-byte magic did not match the expected format.
    BadMagic,
    /// The format version is not one this build can read.
    BadVersion(u32),
    /// The FNV-1a trailer did not match the content (corruption).
    BadChecksum,
    /// A decoded value is structurally impossible (context in the str).
    Corrupt(&'static str),
    /// The snapshot/trace was captured under a different configuration.
    ConfigMismatch,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadMagic => write!(f, "bad magic (not this format)"),
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::BadChecksum => write!(f, "checksum mismatch (corrupt input)"),
            CodecError::Corrupt(what) => write!(f, "corrupt field: {what}"),
            CodecError::ConfigMismatch => write!(f, "configuration fingerprint mismatch"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes` — the checksum both binary formats use
/// (same hash family the experiment grid already uses for point seeds).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Growable little-endian byte sink. Every `put` appends; call
/// [`finish`](Self::finish) to take the buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as its little-endian IEEE-754 bits (bit-exact
    /// round-trip, NaN payloads included).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append an unsigned LEB128 varint (1 byte for values < 128).
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append a signed value as a zigzag-encoded varint (small magnitudes
    /// of either sign stay short).
    pub fn varint_signed(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Append a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append an `Option<Cycle>` (`None` ↦ 0, `Some(c)` ↦ `c + 1`, as a
    /// varint). Cycles never reach `u64::MAX`, so the shift is lossless.
    pub fn opt_cycle(&mut self, v: Option<Cycle>) {
        match v {
            None => self.varint(0),
            Some(c) => self.varint(c + 1),
        }
    }

    /// Append a cycle slice with a length prefix.
    pub fn cycle_slice(&mut self, vs: &[Cycle]) {
        self.varint(vs.len() as u64);
        for &v in vs {
            self.varint(v);
        }
    }

    /// Append a `u32` slice with a length prefix.
    pub fn u32_slice(&mut self, vs: &[u32]) {
        self.varint(vs.len() as u64);
        for &v in vs {
            self.varint(u64::from(v));
        }
    }

    /// Take the accumulated bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over an immutable byte slice; every read checks bounds and
/// returns [`CodecError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("take(4) yields 4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("take(8) yields 8 bytes"),
        ))
    }

    /// Read an `f32` from its IEEE-754 bits.
    pub fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(u32::from_le_bytes(
            self.take(4)?.try_into().expect("take(4) yields 4 bytes"),
        )))
    }

    /// Read an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Corrupt("varint longer than 10 bytes"))
    }

    /// Read a zigzag-encoded signed varint.
    pub fn varint_signed(&mut self) -> Result<i64, CodecError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Read a varint and narrow it to `u32`.
    pub fn varint_u32(&mut self) -> Result<u32, CodecError> {
        u32::try_from(self.varint()?).map_err(|_| CodecError::Corrupt("u32 overflow"))
    }

    /// Read a varint and narrow it to `usize`.
    pub fn varint_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.varint()?).map_err(|_| CodecError::Corrupt("usize overflow"))
    }

    /// Read a `bool` (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Corrupt("bool byte not 0/1")),
        }
    }

    /// Read an `Option<Cycle>` written by [`ByteWriter::opt_cycle`].
    pub fn opt_cycle(&mut self) -> Result<Option<Cycle>, CodecError> {
        Ok(match self.varint()? {
            0 => None,
            c => Some(c - 1),
        })
    }

    /// Read a length-prefixed cycle vector.
    pub fn cycle_vec(&mut self) -> Result<Vec<Cycle>, CodecError> {
        let n = self.varint_usize()?;
        // Bound preallocation by what the input could possibly hold
        // (each element is ≥ 1 byte) so a corrupt length cannot OOM.
        let mut vs = Vec::with_capacity(n.min(self.remaining()));
        for _ in 0..n {
            vs.push(self.varint()?);
        }
        Ok(vs)
    }

    /// Read a length-prefixed `u32` vector.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.varint_usize()?;
        let mut vs = Vec::with_capacity(n.min(self.remaining()));
        for _ in 0..n {
            vs.push(self.varint_u32()?);
        }
        Ok(vs)
    }
}

/// Wrap `payload` in the standard frame: `magic · version(u32) ·
/// len(u64) · payload · fnv1a(u64)` with the checksum taken over every
/// preceding byte. Both the snapshot and trace containers use this.
pub fn write_framed(magic: [u8; 4], version: u32, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validate a frame written by [`write_framed`] and return its payload.
///
/// # Errors
///
/// [`CodecError::BadMagic`] / [`CodecError::BadVersion`] on a foreign or
/// newer file, [`CodecError::Truncated`] when bytes are missing, and
/// [`CodecError::BadChecksum`] when the trailer disagrees with the
/// content.
pub fn read_framed(magic: [u8; 4], version: u32, bytes: &[u8]) -> Result<&[u8], CodecError> {
    if bytes.len() < 16 {
        return Err(CodecError::Truncated);
    }
    if bytes[..4] != magic {
        return Err(CodecError::BadMagic);
    }
    let got_version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if got_version != version {
        return Err(CodecError::BadVersion(got_version));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let len = usize::try_from(len).map_err(|_| CodecError::Truncated)?;
    let end = 16usize.checked_add(len).ok_or(CodecError::Truncated)?;
    if bytes.len() < end + 8 {
        return Err(CodecError::Truncated);
    }
    let want = u64::from_le_bytes(bytes[end..end + 8].try_into().expect("8-byte slice"));
    if fnv1a(&bytes[..end]) != want {
        return Err(CodecError::BadChecksum);
    }
    Ok(&bytes[16..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        let mut w = ByteWriter::new();
        let vals = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &vals {
            w.varint(v);
        }
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        for &v in &vals {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn signed_varint_round_trip() {
        let mut w = ByteWriter::new();
        let vals = [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN];
        for &v in &vals {
            w.varint_signed(v);
        }
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        for &v in &vals {
            assert_eq!(r.varint_signed().unwrap(), v);
        }
    }

    #[test]
    fn fixed_width_and_options() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.f32(-0.0);
        w.bool(true);
        w.opt_cycle(None);
        w.opt_cycle(Some(0));
        w.opt_cycle(Some(41));
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_cycle().unwrap(), None);
        assert_eq!(r.opt_cycle().unwrap(), Some(0));
        assert_eq!(r.opt_cycle().unwrap(), Some(41));
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = ByteReader::new(&[0x80]);
        assert_eq!(r.varint(), Err(CodecError::Truncated));
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(CodecError::Truncated));
    }

    #[test]
    fn framing_detects_tampering() {
        let framed = write_framed(*b"TEST", 3, vec![1, 2, 3, 4]);
        assert_eq!(read_framed(*b"TEST", 3, &framed).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(read_framed(*b"ELSE", 3, &framed), Err(CodecError::BadMagic));
        assert_eq!(
            read_framed(*b"TEST", 4, &framed),
            Err(CodecError::BadVersion(3))
        );
        assert_eq!(
            read_framed(*b"TEST", 3, &framed[..framed.len() - 1]),
            Err(CodecError::Truncated)
        );
        let mut flipped = framed.clone();
        flipped[17] ^= 0xff;
        assert_eq!(
            read_framed(*b"TEST", 3, &flipped),
            Err(CodecError::BadChecksum)
        );
    }

    #[test]
    fn fnv1a_reference_vector() {
        // Well-known FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
