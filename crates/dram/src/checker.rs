//! An independent JEDEC-timing validator.
//!
//! [`TimingChecker`] replays a command trace with a *separately written*
//! rule set (different structure from [`crate::channel::Channel`]'s
//! earliest-time registers) and reports the first violation. The simulator
//! proper and the checker cross-validate each other: integration and
//! property tests drive random host+NDA schedules through the channel
//! model and then assert the accepted trace is violation free.
//!
//! Like the channel model, the checker is issuer aware: rank-internal
//! constraints bind host and NDA commands to the same rank against each
//! other, while external-bus constraints (tRTRS, channel read→write
//! turnaround, one command per cycle on the C/A bus) bind host commands
//! only.

use crate::command::{Command, CommandKind, Issuer};
use crate::config::DramConfig;
use crate::Cycle;

/// A timing/state violation found while replaying a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Cycle of the offending command.
    pub at: Cycle,
    /// The offending command.
    pub command: Command,
    /// Human-readable rule description.
    pub rule: String,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {}: {} violates {}",
            self.at, self.command, self.rule
        )
    }
}

impl std::error::Error for CheckError {}

#[derive(Debug, Clone, Copy, Default)]
struct BankHist {
    open_row: Option<u32>,
    last_act: Option<Cycle>,
    last_pre: Option<Cycle>,
    /// Last column ops by any issuer (rank-internal rules).
    last_rd: Option<Cycle>,
    last_wr: Option<Cycle>,
    /// Last column ops by the host (external-bus rules).
    last_rd_host: Option<Cycle>,
    last_wr_host: Option<Cycle>,
}

#[derive(Debug, Clone, Default)]
struct RankHist {
    banks: Vec<BankHist>,
    acts: Vec<Cycle>,
    last_refresh: Option<Cycle>,
    last_cmd_at: Option<Cycle>,
}

/// Replays one channel's command trace and checks every constraint.
#[derive(Debug, Clone)]
pub struct TimingChecker {
    config: DramConfig,
    ranks: Vec<RankHist>,
    last_host_cmd: Option<Cycle>,
    last_at: Option<Cycle>,
    checked: u64,
}

macro_rules! rule {
    ($cond:expr, $at:expr, $cmd:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(CheckError { at: $at, command: *$cmd, rule: format!($($fmt)*) });
        }
    };
}

impl TimingChecker {
    /// A checker for one channel of `config`'s geometry.
    pub fn new(config: &DramConfig) -> Self {
        let ranks = (0..config.ranks_per_channel)
            .map(|_| RankHist {
                banks: vec![BankHist::default(); config.banks_per_rank()],
                acts: Vec::new(),
                last_refresh: None,
                last_cmd_at: None,
            })
            .collect();
        Self {
            config: config.clone(),
            ranks,
            last_host_cmd: None,
            last_at: None,
            checked: 0,
        }
    }

    /// Number of commands checked so far.
    pub fn commands_checked(&self) -> u64 {
        self.checked
    }

    /// Validate and apply the next command of the trace (commands must be
    /// fed in nondecreasing cycle order).
    ///
    /// # Errors
    ///
    /// The first violated rule, with the cycle and command.
    pub fn step(&mut self, at: Cycle, cmd: &Command, issuer: Issuer) -> Result<(), CheckError> {
        let t = self.config.timing;
        let bpg = self.config.banks_per_group;
        if let Some(prev) = self.last_at {
            rule!(
                prev <= at,
                at,
                cmd,
                "trace must be in cycle order (prev {prev})"
            );
        }
        self.last_at = Some(at);
        match issuer {
            Issuer::Host => {
                rule!(
                    self.last_host_cmd != Some(at),
                    at,
                    cmd,
                    "one host command per cycle on the C/A bus"
                );
                rule!(
                    self.ranks[cmd.rank].last_cmd_at != Some(at),
                    at,
                    cmd,
                    "rank command mux conflict (host after NDA, same cycle)"
                );
                self.last_host_cmd = Some(at);
            }
            Issuer::Nda => {
                rule!(
                    self.ranks[cmd.rank].last_cmd_at != Some(at),
                    at,
                    cmd,
                    "one command per rank per cycle (NDA)"
                );
            }
        }
        self.ranks[cmd.rank].last_cmd_at = Some(at);

        let ge = |base: Option<Cycle>, d: u32| base.is_none_or(|b| at >= b + Cycle::from(d));
        let flat = cmd.flat_bank(bpg);
        let nbanks = self.config.banks_per_rank();
        let host = issuer == Issuer::Host;

        // Refresh blackout at rank scope.
        if let Some(rt) = self.ranks[cmd.rank].last_refresh {
            rule!(
                at >= rt + Cycle::from(t.rfc) || cmd.kind == CommandKind::RefAb,
                at,
                cmd,
                "tRFC: rank busy refreshing until {}",
                rt + Cycle::from(t.rfc)
            );
        }

        match cmd.kind {
            CommandKind::Act => {
                let rk = &self.ranks[cmd.rank];
                let b = rk.banks[flat];
                rule!(b.open_row.is_none(), at, cmd, "ACT requires a closed bank");
                rule!(ge(b.last_pre, t.rp), at, cmd, "tRP after PRE");
                rule!(ge(b.last_act, t.rc), at, cmd, "tRC after prior ACT");
                for (i, ob) in rk.banks.iter().enumerate() {
                    if i == flat {
                        continue;
                    }
                    if i / bpg == flat / bpg {
                        rule!(ge(ob.last_act, t.rrdl), at, cmd, "tRRD_L in bank group");
                    } else {
                        rule!(ge(ob.last_act, t.rrds), at, cmd, "tRRD_S in rank");
                    }
                }
                let in_faw = rk
                    .acts
                    .iter()
                    .filter(|&&a| a + Cycle::from(t.faw) > at)
                    .count();
                rule!(in_faw < 4, at, cmd, "tFAW: {} ACTs in window", in_faw);
                let rk = &mut self.ranks[cmd.rank];
                let horizon = Cycle::from(t.faw);
                rk.acts.retain(|&a| a + horizon > at);
                rk.acts.push(at);
                let b = &mut rk.banks[flat];
                b.open_row = Some(cmd.row);
                b.last_act = Some(at);
                b.last_rd = None;
                b.last_wr = None;
                b.last_rd_host = None;
                b.last_wr_host = None;
            }
            CommandKind::Pre | CommandKind::PreAll => {
                let targets: Vec<usize> = if cmd.kind == CommandKind::Pre {
                    vec![flat]
                } else {
                    (0..nbanks).collect()
                };
                for i in targets {
                    let b = self.ranks[cmd.rank].banks[i];
                    if b.open_row.is_some() {
                        rule!(ge(b.last_act, t.ras), at, cmd, "tRAS before PRE (bank {i})");
                        rule!(ge(b.last_rd, t.rtp), at, cmd, "tRTP before PRE (bank {i})");
                        rule!(
                            ge(b.last_wr, t.write_to_pre()),
                            at,
                            cmd,
                            "write recovery before PRE (bank {i})"
                        );
                    }
                    let b = &mut self.ranks[cmd.rank].banks[i];
                    if b.open_row.is_some() {
                        b.open_row = None;
                        b.last_pre = Some(at);
                    } else if cmd.kind == CommandKind::Pre {
                        b.last_pre = Some(at);
                    }
                }
            }
            CommandKind::Rd | CommandKind::Wr => {
                let is_wr = cmd.kind == CommandKind::Wr;
                let b = self.ranks[cmd.rank].banks[flat];
                rule!(
                    b.open_row == Some(cmd.row),
                    at,
                    cmd,
                    "column command needs open row {} (have {:?})",
                    cmd.row,
                    b.open_row
                );
                rule!(ge(b.last_act, t.rcd), at, cmd, "tRCD after ACT");
                for (ri, rk) in self.ranks.iter().enumerate() {
                    for (bi, ob) in rk.banks.iter().enumerate() {
                        let same_rank = ri == cmd.rank;
                        let same_bg = same_rank && bi / bpg == flat / bpg;
                        if same_rank {
                            // Rank-internal rules: any issuer pair.
                            if !is_wr {
                                if same_bg {
                                    rule!(ge(ob.last_rd, t.ccdl), at, cmd, "tCCD_L RD->RD");
                                    rule!(
                                        ge(ob.last_wr, t.write_to_read_same_rank(true)),
                                        at,
                                        cmd,
                                        "tWTR_L WR->RD"
                                    );
                                } else {
                                    rule!(ge(ob.last_rd, t.ccds), at, cmd, "tCCD_S RD->RD");
                                    rule!(
                                        ge(ob.last_wr, t.write_to_read_same_rank(false)),
                                        at,
                                        cmd,
                                        "tWTR_S WR->RD"
                                    );
                                }
                            } else {
                                if same_bg {
                                    rule!(ge(ob.last_wr, t.ccdl), at, cmd, "tCCD_L WR->WR");
                                } else {
                                    rule!(ge(ob.last_wr, t.ccds), at, cmd, "tCCD_S WR->WR");
                                }
                                rule!(
                                    ge(ob.last_rd, t.read_to_write()),
                                    at,
                                    cmd,
                                    "rank I/O RD->WR turnaround"
                                );
                            }
                        } else if host {
                            // External-bus rules: host command vs earlier
                            // *host* commands in other ranks.
                            if !is_wr {
                                rule!(
                                    ge(ob.last_rd_host, t.col_to_col_diff_rank()),
                                    at,
                                    cmd,
                                    "tRTRS RD->RD cross-rank"
                                );
                                rule!(
                                    ge(ob.last_wr_host, t.write_to_read_diff_rank()),
                                    at,
                                    cmd,
                                    "bus WR->RD cross-rank"
                                );
                            } else {
                                rule!(
                                    ge(ob.last_wr_host, t.col_to_col_diff_rank()),
                                    at,
                                    cmd,
                                    "tRTRS WR->WR cross-rank"
                                );
                                rule!(
                                    ge(ob.last_rd_host, t.read_to_write()),
                                    at,
                                    cmd,
                                    "RD->WR bus turnaround"
                                );
                            }
                        }
                    }
                }
                let b = &mut self.ranks[cmd.rank].banks[flat];
                if is_wr {
                    b.last_wr = Some(at);
                    if host {
                        b.last_wr_host = Some(at);
                    }
                } else {
                    b.last_rd = Some(at);
                    if host {
                        b.last_rd_host = Some(at);
                    }
                }
            }
            CommandKind::RefAb => {
                let rk = &self.ranks[cmd.rank];
                rule!(
                    rk.banks.iter().all(|b| b.open_row.is_none()),
                    at,
                    cmd,
                    "REF requires all banks closed"
                );
                for (i, b) in rk.banks.iter().enumerate() {
                    rule!(ge(b.last_pre, t.rp), at, cmd, "tRP before REF (bank {i})");
                }
                if let Some(rt) = rk.last_refresh {
                    rule!(ge(Some(rt), t.rfc), at, cmd, "tRFC between refreshes");
                }
                self.ranks[cmd.rank].last_refresh = Some(at);
            }
        }
        self.checked += 1;
        Ok(())
    }

    /// Validate a whole trace of `(cycle, command, issuer)` entries.
    ///
    /// # Errors
    ///
    /// The first violation found.
    #[cold]
    pub fn check_trace(
        config: &DramConfig,
        trace: impl IntoIterator<Item = (Cycle, Command, Issuer)>,
    ) -> Result<u64, CheckError> {
        let mut c = Self::new(config);
        for (at, cmd, issuer) in trace {
            c.step(at, &cmd, issuer)?;
        }
        Ok(c.checked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Command;

    fn cfg() -> DramConfig {
        DramConfig::table_ii()
    }

    const H: Issuer = Issuer::Host;
    const N: Issuer = Issuer::Nda;

    #[test]
    fn accepts_legal_sequence() {
        let trace = vec![
            (0, Command::act(0, 0, 0, 1), H),
            (16, Command::rd(0, 0, 0, 1, 0), H),
            (22, Command::rd(0, 0, 0, 1, 1), H),
            (60, Command::pre(0, 0, 0), H),
            (76, Command::act(0, 0, 0, 2), H),
        ];
        assert_eq!(TimingChecker::check_trace(&cfg(), trace).unwrap(), 5);
    }

    #[test]
    fn rejects_rcd_violation() {
        let trace = vec![
            (0, Command::act(0, 0, 0, 1), H),
            (10, Command::rd(0, 0, 0, 1, 0), H),
        ];
        let err = TimingChecker::check_trace(&cfg(), trace).unwrap_err();
        assert!(err.rule.contains("tRCD"), "{err}");
    }

    #[test]
    fn rejects_row_mismatch() {
        let trace = vec![
            (0, Command::act(0, 0, 0, 1), H),
            (20, Command::rd(0, 0, 0, 9, 0), H),
        ];
        let err = TimingChecker::check_trace(&cfg(), trace).unwrap_err();
        assert!(err.rule.contains("open row"), "{err}");
    }

    #[test]
    fn rejects_wtr_violation_even_cross_issuer() {
        let trace = vec![
            (0, Command::act(0, 0, 0, 1), H),
            (4, Command::act(0, 1, 0, 2), H),
            (30, Command::wr(0, 0, 0, 1, 0), N),
            // tWTR_S = cwl+bl+wtrs = 19; 30+18 is too early even though
            // the write came from the NDA — the rank I/O is shared.
            (48, Command::rd(0, 1, 0, 2, 0), H),
        ];
        let err = TimingChecker::check_trace(&cfg(), trace).unwrap_err();
        assert!(err.rule.contains("tWTR"), "{err}");
    }

    #[test]
    fn nda_cross_rank_is_unconstrained() {
        // Host read rank 0 at 60; NDA read rank 1 at 61 is fine (no
        // tRTRS for internal accesses).
        let trace = vec![
            (0, Command::act(0, 0, 0, 1), H),
            (4, Command::act(1, 0, 0, 2), H),
            (60, Command::rd(0, 0, 0, 1, 0), H),
            (61, Command::rd(1, 0, 0, 2, 0), N),
        ];
        TimingChecker::check_trace(&cfg(), trace).unwrap();
        // But the same command from the host violates tRTRS.
        let trace = vec![
            (0, Command::act(0, 0, 0, 1), H),
            (4, Command::act(1, 0, 0, 2), H),
            (60, Command::rd(0, 0, 0, 1, 0), H),
            (61, Command::rd(1, 0, 0, 2, 0), H),
        ];
        let err = TimingChecker::check_trace(&cfg(), trace).unwrap_err();
        assert!(err.rule.contains("tRTRS"), "{err}");
    }

    #[test]
    fn rejects_faw_violation() {
        let trace = vec![
            (0, Command::act(0, 0, 0, 1), H),
            (4, Command::act(0, 1, 0, 1), H),
            (8, Command::act(0, 2, 0, 1), H),
            (12, Command::act(0, 3, 0, 1), H),
            (16, Command::act(0, 0, 1, 1), H),
        ];
        let err = TimingChecker::check_trace(&cfg(), trace).unwrap_err();
        assert!(err.rule.contains("tFAW"), "{err}");
    }

    #[test]
    fn rejects_same_cycle_host_commands_but_allows_nda_parallelism() {
        let trace = vec![
            (5, Command::act(0, 0, 0, 1), H),
            (5, Command::act(1, 0, 0, 1), H),
        ];
        let err = TimingChecker::check_trace(&cfg(), trace).unwrap_err();
        assert!(err.rule.contains("one host command"), "{err}");
        // Host to rank 0 and NDA to rank 1 in the same cycle are legal.
        let trace = vec![
            (5, Command::act(0, 0, 0, 1), H),
            (5, Command::act(1, 0, 0, 1), N),
        ];
        TimingChecker::check_trace(&cfg(), trace).unwrap();
        // NDA to the same rank as a host command is not.
        let trace = vec![
            (5, Command::act(0, 0, 0, 1), H),
            (5, Command::act(0, 1, 0, 1), N),
        ];
        let err = TimingChecker::check_trace(&cfg(), trace).unwrap_err();
        assert!(err.rule.contains("per rank"), "{err}");
    }
}
