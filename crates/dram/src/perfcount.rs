//! Lightweight simulator-cost counters, compiled in only under the
//! `perf-counters` cargo feature.
//!
//! These count *simulator work* (scheduler scans, timing recomputations,
//! memo hits), not simulated-machine events — they exist so a throughput
//! regression on the perf harness can be attributed to a specific hot
//! path. `chopim-perf --verbose` prints them per scenario when built with
//! `--features perf-counters`; without the feature every call compiles to
//! nothing.
//!
//! ## Scopes
//!
//! Counters are bucketed by a thread-local *scope* so the channel-sharded
//! engine can attribute work per shard even when shards tick on a worker
//! pool: scope `0` is the front-end (and anything that never sets a
//! scope), scope `1 + ch` is channel `ch`'s shard. The engine sets the
//! scope around each shard's window ([`set_scope`]/[`scope`]); snapshots
//! are available flat ([`snapshot`], summed over scopes — the pre-shard
//! view) or per scope ([`snapshot_scoped`], what `chopim-perf --verbose`
//! prints as one table row per channel plus a total).
//!
//! The counters are process-global relaxed atomics: the perf harness runs
//! scenarios serially, so a reset/snapshot pair brackets one run; within
//! a run, each shard bumps its own scope's bucket.

/// True when the crate was built with the `perf-counters` feature.
pub const ENABLED: bool = cfg!(feature = "perf-counters");

/// Number of counter scopes: `0` = front-end/unattributed, `1..` =
/// per-channel shards. Channels beyond the last slot fold into it.
pub const SCOPES: usize = 17;

/// One attributable unit of simulator work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Fresh `ready_at` timing computations (memo misses land here too).
    ReadyAt,
    /// `plan_access` bank-state lookups.
    PlanAccess,
    /// Host-scheduler candidate passes (`HostMc::schedule` invocations).
    SchedPasses,
    /// Queue entries examined across all host-scheduler passes.
    SchedEntriesScanned,
    /// Host-scheduler memo hits (queued tx judged from a cached
    /// `(plan, ready_at)` without touching the device model).
    SchedMemoHit,
    /// Host-scheduler memo misses (epoch moved; plan+ready recomputed).
    SchedMemoMiss,
    /// Controller wake-up/horizon scans (`next_event_cycle` bodies).
    HorizonScans,
    /// NDA-controller memo hits.
    NdaMemoHit,
    /// NDA-controller memo misses.
    NdaMemoMiss,
    /// Window barriers executed by the sharded engine (front-end scope).
    Barriers,
    /// Shard-windows actually ticked (a barrier over `N` shards where
    /// `Q` were quiet counts `N - Q`).
    WindowsExecuted,
    /// Cross-shard messages exchanged at barriers (ingress + fills +
    /// completions), front-end scope.
    MessagesExchanged,
    /// High-water mark of the flat exchange arenas (a [`hi`] counter:
    /// the per-scope value is a maximum; the flat snapshot sums scopes,
    /// so read this one from the per-scope table).
    ArenaHighWater,
    /// Cycles a shard leapt past a window barrier because its computed
    /// horizon proved it quiet (per-shard scope).
    HorizonLeapCycles,
    /// Sessions examined by runtime launch arbitration
    /// (`next_launches` heap pops). The O(active) proof: this stays ≪
    /// sessions × launch windows on thousand-tenant scenarios, where the
    /// pre-index rotating scan was exactly sessions × windows.
    SchedSessionsScanned,
    /// Ready-index maintenance operations (heap pushes/pops, waitlist
    /// parks, wake-heap arms, credit-return wakes).
    ReadyIndexOps,
}

/// Number of distinct counters.
pub const NUM_COUNTERS: usize = 16;

/// Counter labels, index-aligned with [`Counter`].
pub const LABELS: [&str; NUM_COUNTERS] = [
    "ready_at_calls",
    "plan_access_calls",
    "sched_passes",
    "sched_entries_scanned",
    "sched_memo_hits",
    "sched_memo_misses",
    "horizon_scans",
    "nda_memo_hits",
    "nda_memo_misses",
    "barriers",
    "windows_executed",
    "messages_exchanged",
    "arena_high_water",
    "horizon_leap_cycles",
    "sched_sessions_scanned",
    "ready_index_ops",
];

#[cfg(feature = "perf-counters")]
mod imp {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::{NUM_COUNTERS, SCOPES};

    pub static COUNTERS: [[AtomicU64; NUM_COUNTERS]; SCOPES] =
        [const { [const { AtomicU64::new(0) }; NUM_COUNTERS] }; SCOPES];

    thread_local! {
        pub static SCOPE: Cell<usize> = const { Cell::new(0) };
    }

    #[inline(always)]
    pub fn bump(c: super::Counter) {
        let s = SCOPE.with(|s| s.get());
        COUNTERS[s][c as usize].fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn add(c: super::Counter, n: u64) {
        let s = SCOPE.with(|s| s.get());
        COUNTERS[s][c as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn hi(c: super::Counter, n: u64) {
        let s = SCOPE.with(|s| s.get());
        COUNTERS[s][c as usize].fetch_max(n, Ordering::Relaxed);
    }
}

/// Set the calling thread's counter scope (`0` = front-end, `1 + ch` =
/// channel `ch`'s shard; clamped to the last slot). No-op without the
/// feature. Returns the previous scope so callers can restore it.
pub fn set_scope(scope: usize) -> usize {
    #[cfg(feature = "perf-counters")]
    {
        let s = scope.min(SCOPES - 1);
        imp::SCOPE.with(|c| c.replace(s))
    }
    #[cfg(not(feature = "perf-counters"))]
    {
        let _ = scope;
        0
    }
}

/// The calling thread's current counter scope.
pub fn scope() -> usize {
    #[cfg(feature = "perf-counters")]
    {
        imp::SCOPE.with(|c| c.get())
    }
    #[cfg(not(feature = "perf-counters"))]
    0
}

/// Count one unit of `c` in the current scope. No-op without the feature.
#[inline(always)]
pub fn bump(c: Counter) {
    #[cfg(feature = "perf-counters")]
    imp::bump(c);
    #[cfg(not(feature = "perf-counters"))]
    let _ = c;
}

/// Count `n` units of `c` in the current scope. No-op without the
/// feature.
#[inline(always)]
pub fn add(c: Counter, n: u64) {
    #[cfg(feature = "perf-counters")]
    imp::add(c, n);
    #[cfg(not(feature = "perf-counters"))]
    let _ = (c, n);
}

/// Raise `c` in the current scope to at least `n` (a high-water mark).
/// No-op without the feature.
#[inline(always)]
pub fn hi(c: Counter, n: u64) {
    #[cfg(feature = "perf-counters")]
    imp::hi(c, n);
    #[cfg(not(feature = "perf-counters"))]
    let _ = (c, n);
}

/// Zero every counter in every scope.
pub fn reset() {
    #[cfg(feature = "perf-counters")]
    for scope in &imp::COUNTERS {
        for c in scope {
            c.store(0, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// Snapshot `(label, value)` for every counter, summed over all scopes
/// (the flat, pre-shard view); empty without the feature.
#[cold]
pub fn snapshot() -> Vec<(&'static str, u64)> {
    #[cfg(feature = "perf-counters")]
    {
        LABELS
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let total: u64 = imp::COUNTERS
                    .iter()
                    .map(|s| s[i].load(std::sync::atomic::Ordering::Relaxed))
                    .sum();
                (l, total)
            })
            .collect()
    }
    #[cfg(not(feature = "perf-counters"))]
    Vec::new()
}

/// Per-scope snapshot: `(scope, [value per counter])` for every scope
/// with at least one nonzero counter; empty without the feature. Scope 0
/// is the front-end, scope `1 + ch` is channel `ch`'s shard.
pub fn snapshot_scoped() -> Vec<(usize, [u64; NUM_COUNTERS])> {
    #[cfg(feature = "perf-counters")]
    {
        imp::COUNTERS
            .iter()
            .enumerate()
            .filter_map(|(scope, s)| {
                let mut row = [0u64; NUM_COUNTERS];
                for (i, c) in s.iter().enumerate() {
                    row[i] = c.load(std::sync::atomic::Ordering::Relaxed);
                }
                (row.iter().any(|&v| v > 0)).then_some((scope, row))
            })
            .collect()
    }
    #[cfg(not(feature = "perf-counters"))]
    Vec::new()
}

#[cfg(all(test, feature = "perf-counters"))]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot_roundtrip() {
        reset();
        bump(Counter::ReadyAt);
        add(Counter::SchedEntriesScanned, 3);
        let snap = snapshot();
        assert_eq!(snap[Counter::ReadyAt as usize], ("ready_at_calls", 1));
        assert_eq!(
            snap[Counter::SchedEntriesScanned as usize],
            ("sched_entries_scanned", 3)
        );
        reset();
    }

    #[test]
    fn hi_keeps_the_maximum() {
        reset();
        hi(Counter::ArenaHighWater, 5);
        hi(Counter::ArenaHighWater, 3);
        hi(Counter::ArenaHighWater, 9);
        assert_eq!(snapshot()[Counter::ArenaHighWater as usize].1, 9);
        reset();
    }

    #[test]
    fn scoped_counters_attribute_to_the_set_scope() {
        reset();
        let prev = set_scope(2);
        bump(Counter::SchedPasses);
        set_scope(prev);
        bump(Counter::SchedPasses);
        let scoped = snapshot_scoped();
        assert!(scoped
            .iter()
            .any(|(s, row)| *s == 2 && row[Counter::SchedPasses as usize] == 1));
        // The flat snapshot sums every scope.
        assert_eq!(snapshot()[Counter::SchedPasses as usize].1, 2);
        reset();
    }
}
