//! Lightweight simulator-cost counters, compiled in only under the
//! `perf-counters` cargo feature.
//!
//! These count *simulator work* (scheduler scans, timing recomputations,
//! memo hits), not simulated-machine events — they exist so a throughput
//! regression on the perf harness can be attributed to a specific hot
//! path. `chopim-perf --verbose` prints them per scenario when built with
//! `--features perf-counters`; without the feature every call compiles to
//! nothing.
//!
//! The counters are process-global relaxed atomics: the perf harness runs
//! scenarios serially, so a reset/snapshot pair brackets one run.

/// True when the crate was built with the `perf-counters` feature.
pub const ENABLED: bool = cfg!(feature = "perf-counters");

/// One attributable unit of simulator work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Fresh `ready_at` timing computations (memo misses land here too).
    ReadyAt,
    /// `plan_access` bank-state lookups.
    PlanAccess,
    /// Host-scheduler candidate passes (`HostMc::schedule` invocations).
    SchedPasses,
    /// Queue entries examined across all host-scheduler passes.
    SchedEntriesScanned,
    /// Host-scheduler memo hits (queued tx judged from a cached
    /// `(plan, ready_at)` without touching the device model).
    SchedMemoHit,
    /// Host-scheduler memo misses (epoch moved; plan+ready recomputed).
    SchedMemoMiss,
    /// Controller wake-up/horizon scans (`next_event_cycle` bodies).
    HorizonScans,
    /// NDA-controller memo hits.
    NdaMemoHit,
    /// NDA-controller memo misses.
    NdaMemoMiss,
}

/// Counter labels, index-aligned with [`Counter`].
pub const LABELS: [&str; 9] = [
    "ready_at_calls",
    "plan_access_calls",
    "sched_passes",
    "sched_entries_scanned",
    "sched_memo_hits",
    "sched_memo_misses",
    "horizon_scans",
    "nda_memo_hits",
    "nda_memo_misses",
];

#[cfg(feature = "perf-counters")]
mod imp {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static COUNTERS: [AtomicU64; 9] = [const { AtomicU64::new(0) }; 9];

    #[inline(always)]
    pub fn bump(c: super::Counter) {
        COUNTERS[c as usize].fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    pub fn add(c: super::Counter, n: u64) {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Count one unit of `c`. No-op without the feature.
#[inline(always)]
pub fn bump(c: Counter) {
    #[cfg(feature = "perf-counters")]
    imp::bump(c);
    #[cfg(not(feature = "perf-counters"))]
    let _ = c;
}

/// Count `n` units of `c`. No-op without the feature.
#[inline(always)]
pub fn add(c: Counter, n: u64) {
    #[cfg(feature = "perf-counters")]
    imp::add(c, n);
    #[cfg(not(feature = "perf-counters"))]
    let _ = (c, n);
}

/// Zero every counter.
pub fn reset() {
    #[cfg(feature = "perf-counters")]
    for c in &imp::COUNTERS {
        c.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Snapshot `(label, value)` for every counter; empty without the feature.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    #[cfg(feature = "perf-counters")]
    {
        LABELS
            .iter()
            .zip(&imp::COUNTERS)
            .map(|(&l, c)| (l, c.load(std::sync::atomic::Ordering::Relaxed)))
            .collect()
    }
    #[cfg(not(feature = "perf-counters"))]
    Vec::new()
}

#[cfg(all(test, feature = "perf-counters"))]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot_roundtrip() {
        reset();
        bump(Counter::ReadyAt);
        add(Counter::SchedEntriesScanned, 3);
        let snap = snapshot();
        assert_eq!(snap[Counter::ReadyAt as usize], ("ready_at_calls", 1));
        assert_eq!(
            snap[Counter::SchedEntriesScanned as usize],
            ("sched_entries_scanned", 3)
        );
        reset();
    }
}
