//! Compact binary event traces: capture and replay.
//!
//! A trace records everything needed to re-drive the channel model
//! without the engine that produced it: the full DRAM command stream
//! (with issuers), NDA launches, and completions, in global cycle
//! order. The encoding (normative spec: `docs/TRACE_FORMAT.md`) keeps
//! files small with two techniques:
//!
//! * **delta-encoded cycles** — each record stores the varint distance
//!   to the previous record's cycle instead of an absolute `u64`;
//! * **run-length encoding** — streaming accesses issue long runs of
//!   column commands to the same bank/row with constant cycle and
//!   column strides; a run collapses into one `CmdRun` record.
//!
//! Replay ([`replay`]) rebuilds fresh channels for the same
//! configuration and re-issues every command through the *validating*
//! [`Channel::issue`] path. Because the device model is deterministic,
//! a legal capture replays legally and reproduces the original
//! [`DramStats`] exactly — so replay doubles as an end-to-end check of
//! both the trace and the encoder.

#![warn(clippy::cast_possible_truncation)]

use crate::codec::{read_framed, write_framed, ByteReader, ByteWriter, CodecError};
use crate::command::{Command, CommandKind, Issuer};
use crate::config::DramConfig;
use crate::stats::DramStats;
use crate::system::IssueError;
use crate::{Channel, Cycle};

/// Magic bytes opening every trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"CHTR";
/// Trace format version this build reads and writes.
pub const TRACE_VERSION: u32 = 1;

/// Record tag: one DRAM command.
const TAG_CMD: u8 = 0x01;
/// Record tag: an RLE run of column commands.
const TAG_CMD_RUN: u8 = 0x02;
/// Record tag: an NDA instruction launch.
const TAG_LAUNCH: u8 = 0x03;
/// Record tag: an NDA instruction completion.
const TAG_COMPLETION: u8 = 0x04;

/// One captured event, with its absolute cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A DRAM command applied on `channel` at `cycle`.
    Cmd {
        /// Absolute cycle the command issued.
        cycle: Cycle,
        /// Channel index.
        channel: u32,
        /// The command.
        cmd: Command,
        /// Host or NDA origin.
        issuer: Issuer,
    },
    /// An NDA instruction entered a rank controller's queue.
    Launch {
        /// Absolute launch-delivery cycle.
        cycle: Cycle,
        /// Channel index of the receiving rank.
        channel: u32,
        /// Channel-local NDA index.
        nda_local: u32,
        /// The launched instruction's id.
        instr_id: u64,
    },
    /// An NDA instruction finished (all writes drained).
    Completion {
        /// Absolute completion cycle.
        cycle: Cycle,
        /// The completed instruction's id.
        instr_id: u64,
    },
}

impl TraceEvent {
    /// The event's absolute cycle.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::Cmd { cycle, .. }
            | TraceEvent::Launch { cycle, .. }
            | TraceEvent::Completion { cycle, .. } => cycle,
        }
    }
}

/// A decoded trace: header fields plus the event stream in cycle order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Fingerprint of the [`DramConfig`] the capture ran under.
    pub config_fingerprint: u64,
    /// The simulation end cycle (used to finalize idle histograms).
    pub end_cycle: Cycle,
    /// All events, non-decreasing in cycle.
    pub events: Vec<TraceEvent>,
}

fn pack_kind_issuer(kind: CommandKind, issuer: Issuer) -> u8 {
    let k = match kind {
        CommandKind::Act => 0,
        CommandKind::Pre => 1,
        CommandKind::PreAll => 2,
        CommandKind::Rd => 3,
        CommandKind::Wr => 4,
        CommandKind::RefAb => 5,
    };
    k | (u8::from(issuer == Issuer::Nda) << 3)
}

fn unpack_kind_issuer(byte: u8) -> Result<(CommandKind, Issuer), CodecError> {
    let kind = match byte & 0x07 {
        0 => CommandKind::Act,
        1 => CommandKind::Pre,
        2 => CommandKind::PreAll,
        3 => CommandKind::Rd,
        4 => CommandKind::Wr,
        5 => CommandKind::RefAb,
        _ => return Err(CodecError::Corrupt("command kind")),
    };
    let issuer = if byte & 0x08 != 0 {
        Issuer::Nda
    } else {
        Issuer::Host
    };
    if byte & 0xf0 != 0 {
        return Err(CodecError::Corrupt("kind/issuer reserved bits"));
    }
    Ok((kind, issuer))
}

fn write_cmd_site(w: &mut ByteWriter, channel: u32, cmd: &Command, issuer: Issuer) {
    w.varint(u64::from(channel));
    w.u8(pack_kind_issuer(cmd.kind, issuer));
    w.varint(cmd.rank as u64);
    w.varint(cmd.bankgroup as u64);
    w.varint(cmd.bank as u64);
    w.varint(u64::from(cmd.row));
    w.varint(u64::from(cmd.col));
}

fn read_cmd_site(r: &mut ByteReader<'_>) -> Result<(u32, Command, Issuer), CodecError> {
    let channel = r.varint_u32()?;
    let (kind, issuer) = unpack_kind_issuer(r.u8()?)?;
    let rank = r.varint_usize()?;
    let bankgroup = r.varint_usize()?;
    let bank = r.varint_usize()?;
    let row = r.varint_u32()?;
    let col = r.varint_u32()?;
    let cmd = Command {
        kind,
        rank,
        bankgroup,
        bank,
        row,
        col,
    };
    Ok((channel, cmd, issuer))
}

/// Length of the column-command run starting at `events[i]`: maximal
/// prefix with identical channel/kind/issuer/rank/bankgroup/bank/row
/// and constant cycle and column strides.
fn run_len(events: &[TraceEvent], i: usize) -> usize {
    let TraceEvent::Cmd {
        cycle,
        channel,
        cmd,
        issuer,
    } = events[i]
    else {
        return 1;
    };
    if !cmd.kind.is_column() {
        return 1;
    }
    let mut len = 1;
    let mut cycle_stride = None;
    let mut col_stride = None;
    let (mut prev_cycle, mut prev_col) = (cycle, cmd.col);
    for e in &events[i + 1..] {
        let TraceEvent::Cmd {
            cycle: c2,
            channel: ch2,
            cmd: cmd2,
            issuer: is2,
        } = *e
        else {
            break;
        };
        if ch2 != channel
            || is2 != issuer
            || cmd2.kind != cmd.kind
            || cmd2.rank != cmd.rank
            || cmd2.bankgroup != cmd.bankgroup
            || cmd2.bank != cmd.bank
            || cmd2.row != cmd.row
        {
            break;
        }
        let dc = c2 - prev_cycle;
        let dcol = i64::from(cmd2.col) - i64::from(prev_col);
        match (cycle_stride, col_stride) {
            (None, None) => {
                cycle_stride = Some(dc);
                col_stride = Some(dcol);
            }
            (Some(cs), Some(ks)) if cs == dc && ks == dcol => {}
            _ => break,
        }
        prev_cycle = c2;
        prev_col = cmd2.col;
        len += 1;
    }
    len
}

/// Encode `events` (already sorted by cycle) into a framed trace file.
///
/// # Panics
///
/// Panics in debug builds when `events` is not sorted by cycle.
#[cold]
pub fn encode_trace(config_fingerprint: u64, end_cycle: Cycle, events: &[TraceEvent]) -> Vec<u8> {
    debug_assert!(
        events.windows(2).all(|w| w[0].cycle() <= w[1].cycle()),
        "trace events must be sorted by cycle"
    );
    let mut w = ByteWriter::new();
    w.u64(config_fingerprint);
    w.varint(end_cycle);
    let mut last_cycle: Cycle = 0;
    let mut i = 0;
    while i < events.len() {
        let len = run_len(events, i);
        match events[i] {
            TraceEvent::Cmd {
                cycle,
                channel,
                cmd,
                issuer,
            } if len >= 3 => {
                // A run only pays off once the per-command fields it
                // elides outweigh its two stride fields — at 3+ commands.
                let TraceEvent::Cmd {
                    cycle: c1, cmd: m1, ..
                } = events[i + 1]
                else {
                    unreachable!("run_len > 1 implies Cmd follows");
                };
                w.u8(TAG_CMD_RUN);
                w.varint(cycle - last_cycle);
                w.varint(len as u64);
                w.varint(c1 - cycle);
                w.varint_signed(i64::from(m1.col) - i64::from(cmd.col));
                write_cmd_site(&mut w, channel, &cmd, issuer);
                last_cycle = events[i + len - 1].cycle();
                i += len;
            }
            TraceEvent::Cmd {
                cycle,
                channel,
                cmd,
                issuer,
            } => {
                w.u8(TAG_CMD);
                w.varint(cycle - last_cycle);
                write_cmd_site(&mut w, channel, &cmd, issuer);
                last_cycle = cycle;
                i += 1;
            }
            TraceEvent::Launch {
                cycle,
                channel,
                nda_local,
                instr_id,
            } => {
                w.u8(TAG_LAUNCH);
                w.varint(cycle - last_cycle);
                w.varint(u64::from(channel));
                w.varint(u64::from(nda_local));
                w.varint(instr_id);
                last_cycle = cycle;
                i += 1;
            }
            TraceEvent::Completion { cycle, instr_id } => {
                w.u8(TAG_COMPLETION);
                w.varint(cycle - last_cycle);
                w.varint(instr_id);
                last_cycle = cycle;
                i += 1;
            }
        }
    }
    write_framed(TRACE_MAGIC, TRACE_VERSION, w.finish())
}

/// Decode a framed trace file back into its event stream.
///
/// # Errors
///
/// All [`CodecError`] variants: wrong magic/version, truncation, a
/// checksum mismatch, or structurally impossible record fields.
#[cold]
pub fn decode_trace(bytes: &[u8]) -> Result<Trace, CodecError> {
    let payload = read_framed(TRACE_MAGIC, TRACE_VERSION, bytes)?;
    let mut r = ByteReader::new(payload);
    let config_fingerprint = r.u64()?;
    let end_cycle = r.varint()?;
    let mut events = Vec::new();
    let mut cycle: Cycle = 0;
    while !r.is_empty() {
        let tag = r.u8()?;
        let delta = r.varint()?;
        cycle = cycle
            .checked_add(delta)
            .ok_or(CodecError::Corrupt("cycle overflow"))?;
        match tag {
            TAG_CMD => {
                let (channel, cmd, issuer) = read_cmd_site(&mut r)?;
                events.push(TraceEvent::Cmd {
                    cycle,
                    channel,
                    cmd,
                    issuer,
                });
            }
            TAG_CMD_RUN => {
                let count = r.varint_usize()?;
                if count < 2 {
                    return Err(CodecError::Corrupt("run shorter than 2"));
                }
                let cycle_stride = r.varint()?;
                let col_stride = r.varint_signed()?;
                let (channel, cmd, issuer) = read_cmd_site(&mut r)?;
                let mut c = cycle;
                let mut col = i64::from(cmd.col);
                for k in 0..count {
                    if k > 0 {
                        c = c
                            .checked_add(cycle_stride)
                            .ok_or(CodecError::Corrupt("run cycle overflow"))?;
                        col += col_stride;
                    }
                    let col = u32::try_from(col).map_err(|_| CodecError::Corrupt("run column"))?;
                    events.push(TraceEvent::Cmd {
                        cycle: c,
                        channel,
                        cmd: Command { col, ..cmd },
                        issuer,
                    });
                }
                cycle = c;
            }
            TAG_LAUNCH => {
                let channel = r.varint_u32()?;
                let nda_local = r.varint_u32()?;
                let instr_id = r.varint()?;
                events.push(TraceEvent::Launch {
                    cycle,
                    channel,
                    nda_local,
                    instr_id,
                });
            }
            TAG_COMPLETION => {
                let instr_id = r.varint()?;
                events.push(TraceEvent::Completion { cycle, instr_id });
            }
            _ => return Err(CodecError::Corrupt("unknown record tag")),
        }
    }
    Ok(Trace {
        config_fingerprint,
        end_cycle,
        events,
    })
}

/// Why a replay stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The trace file itself failed to decode.
    Codec(CodecError),
    /// The trace was captured under a different configuration.
    ConfigMismatch {
        /// Fingerprint in the trace header.
        trace: u64,
        /// Fingerprint of the replay configuration.
        config: u64,
    },
    /// A channel index in the trace exceeds the configuration.
    BadChannel(u32),
    /// A command was illegal against the replayed device state — the
    /// trace does not describe a valid execution.
    Illegal {
        /// Cycle of the failing command.
        cycle: Cycle,
        /// Channel the command targeted.
        channel: u32,
        /// The rejected command.
        cmd: Command,
        /// The device model's rejection reason.
        err: IssueError,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Codec(e) => write!(f, "trace decode failed: {e}"),
            ReplayError::ConfigMismatch { trace, config } => write!(
                f,
                "trace captured under config {trace:#018x}, replaying under {config:#018x}"
            ),
            ReplayError::BadChannel(ch) => write!(f, "trace channel {ch} out of range"),
            ReplayError::Illegal {
                cycle,
                channel,
                cmd,
                err,
            } => write!(
                f,
                "illegal command at cycle {cycle} channel {channel}: {cmd} ({err:?})"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<CodecError> for ReplayError {
    fn from(e: CodecError) -> Self {
        ReplayError::Codec(e)
    }
}

/// The result of re-driving the channel model from a trace.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The channels after the full command stream, stats finalized.
    pub channels: Vec<Channel>,
    /// Aggregated DRAM statistics (identical to the capture's).
    pub stats: DramStats,
    /// The trace's end cycle.
    pub end_cycle: Cycle,
    /// Commands re-issued.
    pub commands: u64,
    /// Launch records seen (informational; replay does not model NDAs).
    pub launches: u64,
    /// Completion records seen.
    pub completions: u64,
}

/// Replay a decoded trace against fresh channels built for `cfg`,
/// validating every command against the device model.
///
/// # Errors
///
/// [`ReplayError::ConfigMismatch`] when the fingerprints disagree, and
/// [`ReplayError::Illegal`] when the device model rejects a command —
/// either means the trace does not describe an execution of `cfg`.
pub fn replay(cfg: &DramConfig, trace: &Trace) -> Result<ReplayOutcome, ReplayError> {
    let fingerprint = cfg.state_fingerprint();
    if trace.config_fingerprint != fingerprint {
        return Err(ReplayError::ConfigMismatch {
            trace: trace.config_fingerprint,
            config: fingerprint,
        });
    }
    let mut channels: Vec<Channel> = (0..cfg.channels).map(|_| Channel::new(cfg)).collect();
    let (mut commands, mut launches, mut completions) = (0u64, 0u64, 0u64);
    for e in &trace.events {
        match *e {
            TraceEvent::Cmd {
                cycle,
                channel,
                cmd,
                issuer,
            } => {
                let ch = channels
                    .get_mut(channel as usize)
                    .ok_or(ReplayError::BadChannel(channel))?;
                ch.issue(&cmd, issuer, cycle)
                    .map_err(|err| ReplayError::Illegal {
                        cycle,
                        channel,
                        cmd,
                        err,
                    })?;
                commands += 1;
            }
            TraceEvent::Launch { .. } => launches += 1,
            TraceEvent::Completion { .. } => completions += 1,
        }
    }
    let mut stats = DramStats::default();
    for ch in &mut channels {
        ch.stats.finalize(trace.end_cycle);
        stats.add_channel(&ch.stats);
    }
    Ok(ReplayOutcome {
        channels,
        stats,
        end_cycle: trace.end_cycle,
        commands,
        launches,
        completions,
    })
}

/// Replay a trace from its raw file bytes (decode + [`replay`]).
///
/// # Errors
///
/// Decode errors plus everything [`replay`] can return.
pub fn replay_bytes(cfg: &DramConfig, bytes: &[u8]) -> Result<ReplayOutcome, ReplayError> {
    let trace = decode_trace(bytes)?;
    replay(cfg, &trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn cmd_event(cycle: Cycle, cmd: Command, issuer: Issuer) -> TraceEvent {
        TraceEvent::Cmd {
            cycle,
            channel: 0,
            cmd,
            issuer,
        }
    }

    #[test]
    fn round_trip_mixed_events() {
        let events = vec![
            cmd_event(0, Command::act(0, 0, 0, 5), Issuer::Host),
            TraceEvent::Launch {
                cycle: 3,
                channel: 0,
                nda_local: 1,
                instr_id: 42,
            },
            cmd_event(20, Command::rd(0, 0, 0, 5, 0), Issuer::Host),
            cmd_event(24, Command::rd(0, 0, 0, 5, 1), Issuer::Host),
            cmd_event(28, Command::rd(0, 0, 0, 5, 2), Issuer::Host),
            cmd_event(32, Command::rd(0, 0, 0, 5, 3), Issuer::Host),
            TraceEvent::Completion {
                cycle: 40,
                instr_id: 42,
            },
        ];
        let bytes = encode_trace(0xabcd, 100, &events);
        let t = decode_trace(&bytes).unwrap();
        assert_eq!(t.config_fingerprint, 0xabcd);
        assert_eq!(t.end_cycle, 100);
        assert_eq!(t.events, events);
    }

    #[test]
    fn rle_compresses_streaming_runs() {
        // 128 reads with constant strides: one run record.
        let events: Vec<TraceEvent> = (0..128)
            .map(|i| {
                cmd_event(
                    100 + 4 * i as Cycle,
                    Command::rd(1, 2, 3, 7, i as u32),
                    Issuer::Nda,
                )
            })
            .collect();
        let bytes = encode_trace(1, 1000, &events);
        // Frame (24) + header (~10) + one run record (~15).
        assert!(
            bytes.len() < 64,
            "run not compressed: {} bytes",
            bytes.len()
        );
        assert_eq!(decode_trace(&bytes).unwrap().events, events);
    }

    #[test]
    fn truncated_and_corrupt_traces_rejected() {
        let events = vec![cmd_event(0, Command::act(0, 0, 0, 1), Issuer::Host)];
        let bytes = encode_trace(1, 10, &events);
        assert_eq!(
            decode_trace(&bytes[..bytes.len() - 3]),
            Err(CodecError::Truncated)
        );
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x55;
        assert!(decode_trace(&bad).is_err());
    }

    #[test]
    fn replay_reproduces_capture_stats() {
        let cfg = DramConfig::tiny().with_timing(TimingParams::ddr4_2400_no_refresh());
        let mut ch = Channel::new(&cfg);
        ch.enable_trace();
        // A small host/NDA mixture with row opens and column streams.
        ch.issue(&Command::act(0, 0, 0, 5), Issuer::Host, 0)
            .unwrap();
        ch.issue(&Command::act(1, 0, 0, 9), Issuer::Nda, 1).unwrap();
        let mut now = 40;
        for col in 0..16u32 {
            ch.issue(&Command::rd(0, 0, 0, 5, col), Issuer::Host, now)
                .unwrap();
            ch.issue(&Command::rd(1, 0, 0, 9, col), Issuer::Nda, now + 1)
                .unwrap();
            now += 8;
        }
        let end = now + 100;
        let events: Vec<TraceEvent> = ch
            .take_trace()
            .into_iter()
            .map(|(cycle, cmd, issuer)| TraceEvent::Cmd {
                cycle,
                channel: 0,
                cmd,
                issuer,
            })
            .collect();
        ch.stats.finalize(end);
        let mut want = DramStats::default();
        want.add_channel(&ch.stats);

        let bytes = encode_trace(cfg.state_fingerprint(), end, &events);
        let out = replay_bytes(&cfg, &bytes).unwrap();
        assert_eq!(out.stats, want);
        assert_eq!(out.commands, events.len() as u64);
        assert_eq!(out.channels[0].stats, ch.stats);
    }

    #[test]
    fn replay_rejects_wrong_config() {
        let cfg = DramConfig::tiny();
        let bytes = encode_trace(12345, 10, &[]);
        assert!(matches!(
            replay_bytes(&cfg, &bytes),
            Err(ReplayError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn replay_rejects_illegal_stream() {
        let cfg = DramConfig::tiny();
        // A read into a closed bank is illegal from reset.
        let events = vec![cmd_event(0, Command::rd(0, 0, 0, 5, 0), Issuer::Host)];
        let bytes = encode_trace(cfg.state_fingerprint(), 10, &events);
        assert!(matches!(
            replay_bytes(&cfg, &bytes),
            Err(ReplayError::Illegal { .. })
        ));
    }
}
