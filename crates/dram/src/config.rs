//! Memory-system geometry configuration.

use crate::timing::TimingParams;

/// Geometry and speed of the simulated memory system.
///
/// Defaults reproduce Table II of the Chopim paper: DDR4-2400, 8 Gb x8
/// devices, 2 channels x 2 ranks, 4 bank groups x 4 banks, 64 B cache
/// lines striped across 8 chips per rank.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Independent memory channels.
    pub channels: usize,
    /// Ranks per channel (each rank hosts one NDA partition).
    pub ranks_per_channel: usize,
    /// Bank groups per rank.
    pub bankgroups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Device columns per row (x8 device => one byte per column per chip).
    pub columns: usize,
    /// DRAM chips ganged in a rank.
    pub chips_per_rank: usize,
    /// Data pins per chip.
    pub device_width_bits: usize,
    /// Burst length in beats (BL8).
    pub burst_length: usize,
    /// Timing parameter set.
    pub timing: TimingParams,
}

impl DramConfig {
    /// The paper's Table II configuration: 2 channels x 2 ranks of 8 Gb x8
    /// DDR4-2400 (16 banks/rank, 64 K rows, 1 KB row buffer per chip).
    pub fn table_ii() -> Self {
        Self {
            channels: 2,
            ranks_per_channel: 2,
            bankgroups: 4,
            banks_per_group: 4,
            rows: 65536,
            columns: 1024,
            chips_per_rank: 8,
            device_width_bits: 8,
            burst_length: 8,
            timing: TimingParams::ddr4_2400(),
        }
    }

    /// Table II geometry scaled to `ranks` ranks per channel (the paper's
    /// scalability studies use 2x2, 2x4 and 2x8).
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        self.ranks_per_channel = ranks;
        self
    }

    /// Table II geometry scaled to `channels` memory channels (the
    /// wide-machine scenarios run 8; each channel gets its own host MC
    /// and, in the sharded engine, its own simulation shard).
    pub fn with_channels(mut self, channels: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        self.channels = channels;
        self
    }

    /// Replace the timing parameter set.
    pub fn with_timing(mut self, timing: TimingParams) -> Self {
        self.timing = timing;
        self
    }

    /// A tiny geometry for fast unit tests (1 channel, 2 ranks, 8 rows).
    pub fn tiny() -> Self {
        Self {
            channels: 1,
            ranks_per_channel: 2,
            bankgroups: 2,
            banks_per_group: 2,
            rows: 64,
            columns: 256,
            chips_per_rank: 8,
            device_width_bits: 8,
            burst_length: 8,
            timing: TimingParams::ddr4_2400_no_refresh(),
        }
    }

    /// Banks per rank (bank groups x banks per group).
    #[inline]
    pub fn banks_per_rank(&self) -> usize {
        self.bankgroups * self.banks_per_group
    }

    /// Total ranks in the system.
    #[inline]
    pub fn total_ranks(&self) -> usize {
        self.channels * self.ranks_per_channel
    }

    /// Bytes transferred by one column (cache-line) burst across the rank.
    #[inline]
    pub fn line_bytes(&self) -> usize {
        self.chips_per_rank * self.device_width_bits * self.burst_length / 8
    }

    /// Bytes of one DRAM row across all chips of a rank (the paper's 8 KB).
    #[inline]
    pub fn row_bytes_per_rank(&self) -> usize {
        self.columns * self.chips_per_rank * self.device_width_bits / 8
    }

    /// Cache-line bursts per row per rank (128 for Table II).
    #[inline]
    pub fn lines_per_row(&self) -> usize {
        self.row_bytes_per_rank() / self.line_bytes()
    }

    /// Bytes of one *system row*: one row in every bank of every rank and
    /// channel — the paper's coarse allocation granularity (§III-A).
    #[inline]
    pub fn system_row_bytes(&self) -> u64 {
        self.row_bytes_per_rank() as u64 * self.banks_per_rank() as u64 * self.total_ranks() as u64
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.system_row_bytes() * self.rows as u64
    }

    /// Number of system rows in the machine.
    #[inline]
    pub fn system_rows(&self) -> u64 {
        self.rows as u64
    }

    /// Peak channel data bandwidth in bytes per DRAM cycle (DDR: 2 beats
    /// per cycle x bus width).
    #[inline]
    pub fn channel_bytes_per_cycle(&self) -> f64 {
        (self.chips_per_rank * self.device_width_bits) as f64 * 2.0 / 8.0
    }

    /// A fingerprint of the full configuration (geometry + timing),
    /// embedded in snapshot and trace headers so a capture is never
    /// restored or replayed against a different machine. Computed as
    /// FNV-1a over the `Debug` rendering — stable across runs of the
    /// same build, which is the compatibility level the binary formats
    /// promise (see `docs/SNAPSHOT_FORMAT.md`).
    pub fn state_fingerprint(&self) -> u64 {
        crate::codec::fnv1a(format!("{self:?}").as_bytes())
    }

    /// Validate geometry invariants (powers of two where the address
    /// mapping requires them).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("channels", self.channels),
            ("ranks_per_channel", self.ranks_per_channel),
            ("bankgroups", self.bankgroups),
            ("banks_per_group", self.banks_per_group),
            ("rows", self.rows),
            ("columns", self.columns),
        ] {
            if !v.is_power_of_two() {
                return Err(format!("{name} ({v}) must be a power of two"));
            }
        }
        if self.line_bytes() != 64 {
            return Err(format!(
                "line size must be 64 B (got {}) — the host cache model assumes it",
                self.line_bytes()
            ));
        }
        self.timing.validate()
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::table_ii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_geometry_matches_paper() {
        let c = DramConfig::table_ii();
        c.validate().unwrap();
        assert_eq!(c.banks_per_rank(), 16);
        assert_eq!(c.line_bytes(), 64);
        // 1 KB row buffer per chip => 8 KB per rank (paper §V: "1KB batch
        // ... same size as DRAM page size per chip").
        assert_eq!(c.row_bytes_per_rank(), 8 * 1024);
        assert_eq!(c.lines_per_row(), 128);
        // 8 Gb x8 chip => 1 GiB/chip, 8 GiB/rank, 32 GiB system.
        assert_eq!(c.capacity_bytes(), 32 * (1 << 30));
        // System row: 8 KB x 16 banks x 4 ranks = 512 KiB.
        assert_eq!(c.system_row_bytes(), 512 * 1024);
    }

    #[test]
    fn scaled_configs_keep_invariants() {
        for ranks in [2, 4, 8] {
            let c = DramConfig::table_ii().with_ranks(ranks);
            c.validate().unwrap();
            assert_eq!(c.total_ranks(), 2 * ranks);
        }
    }

    #[test]
    fn tiny_config_is_valid() {
        DramConfig::tiny().validate().unwrap();
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut c = DramConfig::table_ii();
        c.rows = 1000;
        assert!(c.validate().is_err());
    }

    #[test]
    fn peak_bandwidth_is_ddr() {
        let c = DramConfig::table_ii();
        // 64-bit bus, DDR: 16 B per bus cycle.
        assert_eq!(c.channel_bytes_per_cycle(), 16.0);
    }
}
