//! Top-level multi-channel DRAM system.

use crate::channel::Channel;
use crate::command::{Command, Issuer};
use crate::config::DramConfig;
use crate::stats::DramStats;
use crate::Cycle;

/// Result of a column command: the interval the data burst occupies on the
/// bus. For a read, `end` is also the fill-completion time at the
/// controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataReady {
    /// First cycle of the burst (tCL/tCWL after the command).
    pub start: Option<Cycle>,
    /// One past the last cycle of the burst.
    pub end: Option<Cycle>,
}

impl DataReady {
    /// No data movement (row commands).
    pub fn none() -> Self {
        Self::default()
    }

    /// A burst over `[start, end)`.
    pub fn burst(start: Cycle, end: Cycle) -> Self {
        Self {
            start: Some(start),
            end: Some(end),
        }
    }
}

/// Why a command could not issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueError {
    /// Channel/rank/bank indices out of range.
    BadAddress,
    /// ACT to an already-open bank, or REF with open banks.
    BankOpen,
    /// Column command to a closed bank.
    BankClosed,
    /// Column command row differs from the open row.
    RowMismatch,
    /// A timing constraint is not yet satisfied.
    TooEarly,
    /// The command/address bus already carried a command this cycle.
    CmdBusBusy,
}

impl std::fmt::Display for IssueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IssueError::BadAddress => "address out of range",
            IssueError::BankOpen => "bank already open",
            IssueError::BankClosed => "bank is closed",
            IssueError::RowMismatch => "different row is open",
            IssueError::TooEarly => "timing constraint not satisfied",
            IssueError::CmdBusBusy => "command bus already used this cycle",
        };
        f.write_str(s)
    }
}

impl std::error::Error for IssueError {}

/// The complete simulated memory system: `config.channels` independent
/// channels, each with its ranks, banks, and timing state.
#[derive(Debug, Clone)]
pub struct DramSystem {
    config: DramConfig,
    channels: Vec<Channel>,
    trace: Option<Vec<(usize, Cycle, Command, Issuer)>>,
}

impl DramSystem {
    /// Build a system for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails — configurations are programmer
    /// inputs, not runtime data.
    pub fn new(config: DramConfig) -> Self {
        config.validate().expect("invalid DRAM configuration");
        let channels = (0..config.channels)
            .map(|_| Channel::new(&config))
            .collect();
        Self {
            config,
            channels,
            trace: None,
        }
    }

    /// Record every successfully issued command (for offline validation
    /// with [`crate::TimingChecker`]). Costs memory; meant for tests.
    #[cold]
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Take the recorded trace (entries are `(channel, cycle, command,
    /// issuer)`).
    #[cold]
    pub fn take_trace(&mut self) -> Vec<(usize, Cycle, Command, Issuer)> {
        self.trace.take().unwrap_or_default()
    }

    /// The configuration this system was built with.
    #[inline]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// All channels.
    #[inline]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// One channel.
    #[inline]
    pub fn channel(&self, ch: usize) -> &Channel {
        &self.channels[ch]
    }

    /// One channel, mutable (controllers drive it directly).
    #[inline]
    pub fn channel_mut(&mut self, ch: usize) -> &mut Channel {
        &mut self.channels[ch]
    }

    /// True if `cmd` from `issuer` may issue on channel `ch` at `now`.
    pub fn can_issue(&self, ch: usize, cmd: &Command, issuer: Issuer, now: Cycle) -> bool {
        self.channels[ch].can_issue(cmd, issuer, now)
    }

    /// Earliest cycle at which `cmd` from `issuer` satisfies every timing
    /// constraint on channel `ch` (`None` when structurally illegal right
    /// now). The fast-forward horizon logic uses this to compute wake-up
    /// times without mutating any state.
    pub fn ready_at(&self, ch: usize, cmd: &Command, issuer: Issuer) -> Option<Cycle> {
        self.channels[ch].ready_at(cmd, issuer)
    }

    /// Issue `cmd` on channel `ch` at `now`.
    ///
    /// # Errors
    ///
    /// See [`IssueError`].
    pub fn issue(
        &mut self,
        ch: usize,
        cmd: &Command,
        issuer: Issuer,
        now: Cycle,
    ) -> Result<DataReady, IssueError> {
        let r = self.channels[ch].issue(cmd, issuer, now);
        if r.is_ok() {
            if let Some(t) = &mut self.trace {
                t.push((ch, now, *cmd, issuer));
            }
        }
        r
    }

    /// Issue `cmd` on channel `ch` when legality was already established
    /// this cycle (see [`Channel::issue_prechecked`]).
    pub fn issue_prechecked(
        &mut self,
        ch: usize,
        cmd: &Command,
        issuer: Issuer,
        now: Cycle,
    ) -> DataReady {
        let data = self.channels[ch].issue_prechecked(cmd, issuer, now);
        if let Some(t) = &mut self.trace {
            t.push((ch, now, *cmd, issuer));
        }
        data
    }

    /// Close idle-gap histograms at simulation end.
    pub fn finalize(&mut self, end: Cycle) {
        for ch in &mut self.channels {
            ch.stats.finalize(end);
        }
    }

    /// Aggregate statistics across channels and ranks.
    pub fn stats(&self) -> DramStats {
        let mut s = DramStats::default();
        for ch in &self.channels {
            s.add_channel(&ch.stats);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Command;

    #[test]
    fn channels_are_independent() {
        let mut m = DramSystem::new(DramConfig::table_ii());
        // Same cycle on different channels is fine.
        m.issue(0, &Command::act(0, 0, 0, 1), Issuer::Host, 0)
            .unwrap();
        m.issue(1, &Command::act(0, 0, 0, 1), Issuer::Host, 0)
            .unwrap();
        // Same channel same cycle is not.
        assert!(!m.can_issue(0, &Command::act(1, 0, 0, 1), Issuer::Host, 0));
    }

    #[test]
    fn stats_aggregate_over_channels() {
        let mut m = DramSystem::new(DramConfig::table_ii());
        m.issue(0, &Command::act(0, 0, 0, 1), Issuer::Host, 0)
            .unwrap();
        m.issue(1, &Command::act(0, 0, 0, 1), Issuer::Nda, 0)
            .unwrap();
        let rcd = u64::from(m.config().timing.rcd);
        m.issue(0, &Command::rd(0, 0, 0, 1, 0), Issuer::Host, rcd)
            .unwrap();
        m.issue(1, &Command::wr(0, 0, 0, 1, 0), Issuer::Nda, rcd)
            .unwrap();
        let s = m.stats();
        assert_eq!(s.acts, 2);
        assert_eq!(s.acts_nda, 1);
        assert_eq!(s.reads_host, 1);
        assert_eq!(s.writes_nda, 1);
        assert_eq!(s.host_data_cycles, 4);
        assert_eq!(s.nda_data_cycles, 4);
    }

    #[test]
    #[should_panic(expected = "invalid DRAM configuration")]
    fn invalid_config_panics() {
        let mut cfg = DramConfig::table_ii();
        cfg.rows = 1000;
        let _ = DramSystem::new(cfg);
    }
}
