//! Decoded DRAM coordinates.

/// A fully decoded DRAM location: the output of the host address mapping
/// and the coordinate space in which NDA microcode operates.
///
/// Columns are in cache-line-burst units (64 B per rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DramAddress {
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank group within the rank.
    pub bankgroup: usize,
    /// Bank within the bank group.
    pub bank: usize,
    /// Row within the bank.
    pub row: u32,
    /// Column (cache-line burst) within the row.
    pub col: u32,
}

impl DramAddress {
    /// Flat bank index within the rank.
    #[inline]
    pub fn flat_bank(&self, banks_per_group: usize) -> usize {
        self.bankgroup * banks_per_group + self.bank
    }

    /// Rebuild bankgroup/bank fields from a flat bank index.
    #[inline]
    pub fn with_flat_bank(mut self, flat: usize, banks_per_group: usize) -> Self {
        self.bankgroup = flat / banks_per_group;
        self.bank = flat % banks_per_group;
        self
    }

    /// Global rank index across channels (`channel * ranks_per_channel + rank`).
    #[inline]
    pub fn global_rank(&self, ranks_per_channel: usize) -> usize {
        self.channel * ranks_per_channel + self.rank
    }
}

impl std::fmt::Display for DramAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ch{}/rk{}/bg{}/bk{}/row{}/col{}",
            self.channel, self.rank, self.bankgroup, self.bank, self.row, self.col
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_bank_round_trip() {
        for bg in 0..4 {
            for bk in 0..4 {
                let a = DramAddress {
                    bankgroup: bg,
                    bank: bk,
                    ..Default::default()
                };
                let flat = a.flat_bank(4);
                let b = DramAddress::default().with_flat_bank(flat, 4);
                assert_eq!((b.bankgroup, b.bank), (bg, bk));
            }
        }
    }

    #[test]
    fn global_rank_indexing() {
        let a = DramAddress {
            channel: 1,
            rank: 1,
            ..Default::default()
        };
        assert_eq!(a.global_rank(2), 3);
    }
}
