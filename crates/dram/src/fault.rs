//! Deterministic seeded fault plane.
//!
//! A [`FaultPlan`] describes *when* faults fire, not *where the clock
//! is*: every stream is keyed on a monotonically increasing event
//! counter (column reads performed, NDA instructions retired,
//! completion messages sent) hashed together with the plan seed and the
//! channel index. Because those counters advance identically whether
//! the engine ticks cycle-by-cycle or fast-forwards across provably
//! idle regions, and are owned entirely by the shard that draws from
//! them, the fault schedule is bit-identical across serial and
//! multi-threaded execution and across the naive and fast simulation
//! loops. The only cycle-keyed fault — permanent rank death — is folded
//! into the shard horizon so every engine variant ticks at exactly the
//! death cycle.
//!
//! An empty plan (the default) is a single `bool` test on each event
//! path; the fault bodies are `#[cold]` and never execute, keeping the
//! fault plane strictly zero-overhead when disabled.

/// Fault stream discriminators: each fault class draws from its own
/// hash stream so enabling one class never perturbs another.
pub mod stream {
    /// DRAM bit-flips, keyed on NDA column reads.
    pub const BIT_FLIP: u64 = 0;
    /// Correctable-vs-uncorrectable draw for a fired bit-flip.
    pub const UNCORRECTABLE: u64 = 1;
    /// Transient NDA compute faults, keyed on instruction retirements.
    pub const TRANSIENT: u64 = 2;
    /// NDA FSM hangs, keyed on instruction retirements.
    pub const HANG: u64 = 3;
    /// Dropped completion messages, keyed on completions sent.
    pub const DROP: u64 = 4;
    /// Delayed completion messages, keyed on completions sent.
    pub const DELAY: u64 = 5;
}

/// A deterministic, seeded fault-injection plan.
///
/// All `*_period` knobs are mean-free *periods* over their event
/// counter: `0` disables the stream entirely, `p > 0` fires whenever
/// the per-(seed, channel, stream) hash of the current counter value is
/// divisible by `p` — roughly one fault per `p` events, scattered
/// pseudo-randomly rather than strictly periodic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every fault stream.
    pub seed: u64,
    /// Mean period (in NDA column reads) between injected DRAM
    /// bit-flips; `0` disables.
    pub dram_bit_flip_period: u64,
    /// Percentage (0–100) of injected bit-flips that the ECC model
    /// detects but cannot correct; the rest are silently corrected.
    pub uncorrectable_pct: u8,
    /// Mean period (in retired NDA instructions) between transient
    /// compute faults (the instruction's completion reports failure);
    /// `0` disables.
    pub nda_transient_period: u64,
    /// Mean period (in retired NDA instructions) between FSM hangs;
    /// `0` disables.
    pub nda_hang_period: u64,
    /// Extra cycles a hang delays the affected completion by.
    pub nda_hang_cycles: u64,
    /// Mean period (in completions sent) between dropped completion
    /// messages; `0` disables.
    pub completion_drop_period: u64,
    /// Mean period (in completions sent) between delayed completion
    /// messages; `0` disables.
    pub completion_delay_period: u64,
    /// Extra cycles a delayed completion is deferred by.
    pub completion_delay_cycles: u64,
    /// Cycle at which one NDA rank dies permanently; `0` means never.
    pub rank_death_cycle: u64,
    /// Global NDA index (over the machine's rank-major NDA numbering)
    /// of the rank that dies at [`FaultPlan::rank_death_cycle`].
    pub rank_death_nda: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::NONE
    }
}

impl FaultPlan {
    /// The empty plan: no faults, zero overhead.
    pub const NONE: FaultPlan = FaultPlan {
        seed: 0,
        dram_bit_flip_period: 0,
        uncorrectable_pct: 0,
        nda_transient_period: 0,
        nda_hang_period: 0,
        nda_hang_cycles: 0,
        completion_drop_period: 0,
        completion_delay_period: 0,
        completion_delay_cycles: 0,
        rank_death_cycle: 0,
        rank_death_nda: 0,
    };

    /// `true` when no fault stream is enabled — the simulation takes
    /// the zero-overhead path.
    pub fn is_empty(&self) -> bool {
        self.dram_bit_flip_period == 0
            && self.nda_transient_period == 0
            && self.nda_hang_period == 0
            && self.completion_drop_period == 0
            && self.completion_delay_period == 0
            && self.rank_death_cycle == 0
    }

    /// Parse the `CHOPIM_FAULTS` environment knob. The syntax is a
    /// comma-separated key list mirroring the plan fields:
    ///
    /// ```text
    /// bitflip=1000,uncorrectable=10,transient=500,hang=1000:200,
    /// drop=2000,delay=1000:64,rankdeath=50000:3,seed=7
    /// ```
    ///
    /// `hang`, `delay`, and `rankdeath` take a `period:amount` /
    /// `cycle:nda` pair. Unknown keys and malformed numbers are
    /// ignored (the knob is a debugging aid, not a config file).
    pub fn from_env() -> FaultPlan {
        match std::env::var("CHOPIM_FAULTS") {
            Ok(s) => Self::parse(&s),
            Err(_) => FaultPlan::NONE,
        }
    }

    /// Parse the compact `key=value` syntax accepted by
    /// [`FaultPlan::from_env`].
    pub fn parse(s: &str) -> FaultPlan {
        let mut plan = FaultPlan::NONE;
        for part in s.split(',') {
            let part = part.trim();
            let Some((key, val)) = part.split_once('=') else {
                continue;
            };
            let (first, second) = match val.split_once(':') {
                Some((a, b)) => (a, Some(b)),
                None => (val, None),
            };
            let Ok(first) = first.trim().parse::<u64>() else {
                continue;
            };
            let second = second.and_then(|x| x.trim().parse::<u64>().ok());
            match key.trim() {
                "seed" => plan.seed = first,
                "bitflip" => plan.dram_bit_flip_period = first,
                "uncorrectable" => plan.uncorrectable_pct = first.min(100) as u8,
                "transient" => plan.nda_transient_period = first,
                "hang" => {
                    plan.nda_hang_period = first;
                    plan.nda_hang_cycles = second.unwrap_or(100);
                }
                "drop" => plan.completion_drop_period = first,
                "delay" => {
                    plan.completion_delay_period = first;
                    plan.completion_delay_cycles = second.unwrap_or(64);
                }
                "rankdeath" => {
                    plan.rank_death_cycle = first;
                    plan.rank_death_nda = second.unwrap_or(0).min(u32::MAX as u64) as u32;
                }
                _ => {}
            }
        }
        plan
    }

    /// Draw from stream `stream` at event count `n` on channel
    /// `channel`: returns `true` when a fault with mean period
    /// `period` fires. `period == 0` never fires.
    #[inline]
    pub fn fires(&self, period: u64, channel: u64, stream: u64, n: u64) -> bool {
        period > 0 && fault_hash(self.seed, channel, stream, n).is_multiple_of(period)
    }

    /// Whether a fired bit-flip at read count `n` is uncorrectable
    /// under the plan's ECC model.
    #[inline]
    pub fn uncorrectable(&self, channel: u64, n: u64) -> bool {
        fault_hash(self.seed, channel, stream::UNCORRECTABLE, n) % 100
            < self.uncorrectable_pct as u64
    }
}

/// SplitMix64-style stateless hash of (seed, channel, stream, n): the
/// per-stream fault schedule. Stateless and counter-keyed, so any
/// engine variant that counts the same events draws the same faults.
#[inline]
// chopim-lint: allow(coldpath) -- hot despite the name: drawn per event while a plan is active, and #[inline] so `fires` folds to arithmetic
pub fn fault_hash(seed: u64, channel: u64, stream: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_add(channel.wrapping_mul(0xa24b_aed4_963e_e407))
        .wrapping_add(stream.wrapping_mul(0xd6e8_feb8_6659_fd93))
        .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::NONE;
        assert!(p.is_empty());
        for n in 0..1000 {
            assert!(!p.fires(p.dram_bit_flip_period, 0, stream::BIT_FLIP, n));
        }
    }

    #[test]
    fn parse_compact_syntax() {
        let p = FaultPlan::parse(
            "bitflip=1000,uncorrectable=10,transient=500,hang=1000:200,\
             drop=2000,delay=1000:64,rankdeath=50000:3,seed=7",
        );
        assert_eq!(p.seed, 7);
        assert_eq!(p.dram_bit_flip_period, 1000);
        assert_eq!(p.uncorrectable_pct, 10);
        assert_eq!(p.nda_transient_period, 500);
        assert_eq!(p.nda_hang_period, 1000);
        assert_eq!(p.nda_hang_cycles, 200);
        assert_eq!(p.completion_drop_period, 2000);
        assert_eq!(p.completion_delay_period, 1000);
        assert_eq!(p.completion_delay_cycles, 64);
        assert_eq!(p.rank_death_cycle, 50_000);
        assert_eq!(p.rank_death_nda, 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn parse_ignores_garbage() {
        let p = FaultPlan::parse("nonsense,=,x=,bitflip=abc,transient=9");
        assert_eq!(p.nda_transient_period, 9);
        assert_eq!(p.dram_bit_flip_period, 0);
    }

    #[test]
    fn fire_rate_tracks_period() {
        let p = FaultPlan {
            nda_transient_period: 100,
            ..FaultPlan::NONE
        };
        let fired = (0..100_000u64)
            .filter(|&n| p.fires(p.nda_transient_period, 1, stream::TRANSIENT, n))
            .count();
        // Mean period 100 over 100k events: expect ~1000 fires.
        assert!((600..1600).contains(&fired), "fired {fired}");
    }

    #[test]
    fn streams_are_independent() {
        let p = FaultPlan {
            seed: 3,
            nda_transient_period: 50,
            completion_drop_period: 50,
            ..FaultPlan::NONE
        };
        let a: Vec<bool> = (0..512)
            .map(|n| p.fires(50, 0, stream::TRANSIENT, n))
            .collect();
        let b: Vec<bool> = (0..512).map(|n| p.fires(50, 0, stream::DROP, n)).collect();
        assert_ne!(a, b);
    }
}
