//! Per-rank state: banks, bank-group and rank-scope timing registers,
//! the four-activate window, and refresh bookkeeping.

use std::collections::VecDeque;

use crate::bank::Bank;
use crate::config::DramConfig;
use crate::Cycle;

/// Timing registers scoped to one bank group (the `_L` constraints).
#[derive(Debug, Clone, Default)]
pub struct BankGroupTiming {
    /// Earliest RD in this bank group (tCCD_L, tWTR_L).
    pub next_rd: Cycle,
    /// Earliest WR in this bank group (tCCD_L).
    pub next_wr: Cycle,
    /// Earliest ACT in this bank group (tRRD_L).
    pub next_act: Cycle,
}

/// One physical rank: a set of banks that share command timing at rank
/// scope (`_S` constraints, tFAW, refresh).
#[derive(Debug, Clone)]
pub struct Rank {
    banks: Vec<Bank>,
    bankgroups: Vec<BankGroupTiming>,
    banks_per_group: usize,
    /// Earliest RD at rank scope — *internal* DRAM-die constraints
    /// (tCCD_S, tWTR_S, read/write turnaround on the die I/O). Shared by
    /// host and NDA accesses: the rank cannot serve both at once.
    pub next_rd: Cycle,
    /// Earliest WR at rank scope (internal).
    pub next_wr: Cycle,
    /// Earliest ACT at rank scope (tRRD_S, tRFC after refresh).
    pub next_act: Cycle,
    /// Earliest *host* RD: external channel-bus constraints (tRTRS after
    /// other ranks' bursts). NDA accesses never touch the channel bus and
    /// ignore this.
    pub ext_next_rd: Cycle,
    /// Earliest host WR (external bus constraints).
    pub ext_next_wr: Cycle,
    /// Cycle of the last host command addressed to this rank (the die's
    /// command mux can take one command per cycle).
    pub last_host_cmd_at: Option<Cycle>,
    /// Cycle of the last NDA-controller command to this rank.
    pub last_nda_cmd_at: Option<Cycle>,
    /// Issue times of the most recent ACTs, for the tFAW window.
    faw_window: VecDeque<Cycle>,
    /// Cycle at which an in-progress refresh completes (0 if none).
    pub refresh_done_at: Cycle,
    /// Number of all-bank refreshes performed.
    pub refreshes: u64,
}

impl Rank {
    /// Build a rank for `config`'s geometry.
    pub fn new(config: &DramConfig) -> Self {
        Self {
            banks: (0..config.banks_per_rank()).map(|_| Bank::new()).collect(),
            bankgroups: (0..config.bankgroups)
                .map(|_| BankGroupTiming::default())
                .collect(),
            banks_per_group: config.banks_per_group,
            next_rd: 0,
            next_wr: 0,
            next_act: 0,
            ext_next_rd: 0,
            ext_next_wr: 0,
            last_host_cmd_at: None,
            last_nda_cmd_at: None,
            faw_window: VecDeque::with_capacity(4),
            refresh_done_at: 0,
            refreshes: 0,
        }
    }

    /// Access a bank by (bankgroup, bank-in-group).
    #[inline]
    pub fn bank(&self, bankgroup: usize, bank: usize) -> &Bank {
        &self.banks[bankgroup * self.banks_per_group + bank]
    }

    /// Mutable access to a bank by (bankgroup, bank-in-group).
    #[inline]
    pub fn bank_mut(&mut self, bankgroup: usize, bank: usize) -> &mut Bank {
        &mut self.banks[bankgroup * self.banks_per_group + bank]
    }

    /// All banks, flat-indexed.
    #[inline]
    pub fn banks(&self) -> &[Bank] {
        &self.banks
    }

    /// All banks, flat-indexed, mutable.
    #[inline]
    pub fn banks_mut(&mut self) -> &mut [Bank] {
        &mut self.banks
    }

    /// Bank-group timing registers.
    #[inline]
    pub fn bankgroup_timing(&self, bankgroup: usize) -> &BankGroupTiming {
        &self.bankgroups[bankgroup]
    }

    /// Bank-group timing registers, mutable.
    #[inline]
    pub fn bankgroup_timing_mut(&mut self, bankgroup: usize) -> &mut BankGroupTiming {
        &mut self.bankgroups[bankgroup]
    }

    /// True when every bank in the rank is precharged (refresh precondition).
    pub fn all_banks_closed(&self) -> bool {
        self.banks.iter().all(|b| b.open_row().is_none())
    }

    /// Earliest cycle at which a new ACT satisfies the four-activate window.
    pub fn faw_ready_at(&self, faw: u32) -> Cycle {
        if self.faw_window.len() < 4 {
            0
        } else {
            self.faw_window.front().copied().unwrap_or(0) + Cycle::from(faw)
        }
    }

    /// Record an ACT at `now` in the tFAW window.
    pub(crate) fn record_act(&mut self, now: Cycle) {
        if self.faw_window.len() == 4 {
            self.faw_window.pop_front();
        }
        self.faw_window.push_back(now);
    }

    /// True while an all-bank refresh is in progress at `now`.
    #[inline]
    pub fn refreshing(&self, now: Cycle) -> bool {
        now < self.refresh_done_at
    }

    /// True if the die's command mux already carried a command this cycle
    /// (one command per cycle, host or NDA).
    #[inline]
    pub fn cmd_mux_busy(&self, now: Cycle) -> bool {
        self.last_host_cmd_at == Some(now) || self.last_nda_cmd_at == Some(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let r = Rank::new(&DramConfig::table_ii());
        assert_eq!(r.banks().len(), 16);
        assert!(r.all_banks_closed());
    }

    #[test]
    fn faw_window_tracks_last_four() {
        let mut r = Rank::new(&DramConfig::table_ii());
        let faw = 26;
        assert_eq!(r.faw_ready_at(faw), 0);
        for t in [10, 20, 30] {
            r.record_act(t);
            assert_eq!(r.faw_ready_at(faw), 0, "fewer than 4 ACTs never blocks");
        }
        r.record_act(40);
        assert_eq!(r.faw_ready_at(faw), 10 + 26);
        r.record_act(50);
        // Window slides: oldest is now 20.
        assert_eq!(r.faw_ready_at(faw), 20 + 26);
    }

    #[test]
    fn bank_addressing_is_group_major() {
        let mut r = Rank::new(&DramConfig::table_ii());
        r.bank_mut(3, 1).do_activate(5);
        assert_eq!(r.banks()[3 * 4 + 1].open_row(), Some(5));
        assert!(!r.all_banks_closed());
    }
}
