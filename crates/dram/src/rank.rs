//! Per-rank state: rank-scope timing registers, the four-activate window,
//! refresh bookkeeping, and the state epoch that keys timing memoization.
//!
//! Bank and bank-group state lives in contiguous per-channel arrays on
//! [`crate::Channel`] (better cache locality for the schedulers' hot
//! loops); a `Rank` holds only the registers that are scoped to the whole
//! rank.

use std::collections::VecDeque;

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::Cycle;

/// Timing registers scoped to one bank group (the `_L` constraints).
#[derive(Debug, Clone, Default)]
pub struct BankGroupTiming {
    /// Earliest RD in this bank group (tCCD_L, tWTR_L).
    pub next_rd: Cycle,
    /// Earliest WR in this bank group (tCCD_L).
    pub next_wr: Cycle,
    /// Earliest ACT in this bank group (tRRD_L).
    pub next_act: Cycle,
}

impl BankGroupTiming {
    /// Serialize the three registers (snapshot support).
    #[cold]
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.varint(self.next_rd);
        w.varint(self.next_wr);
        w.varint(self.next_act);
    }

    /// Overwrite the registers from a snapshot.
    ///
    /// # Errors
    ///
    /// Propagates truncation from the reader.
    #[cold]
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.next_rd = r.varint()?;
        self.next_wr = r.varint()?;
        self.next_act = r.varint()?;
        Ok(())
    }
}

/// One physical rank: the registers shared by every bank in the rank
/// (`_S` constraints, tFAW, refresh), plus the memoization epoch.
#[derive(Debug, Clone, Default)]
pub struct Rank {
    /// Earliest RD at rank scope — *internal* DRAM-die constraints
    /// (tCCD_S, tWTR_S, read/write turnaround on the die I/O). Shared by
    /// host and NDA accesses: the rank cannot serve both at once.
    pub next_rd: Cycle,
    /// Earliest WR at rank scope (internal).
    pub next_wr: Cycle,
    /// Earliest ACT at rank scope (tRRD_S, tRFC after refresh).
    pub next_act: Cycle,
    /// Earliest *host* RD: external channel-bus constraints (tRTRS after
    /// other ranks' bursts). NDA accesses never touch the channel bus and
    /// ignore this.
    pub ext_next_rd: Cycle,
    /// Earliest host WR (external bus constraints).
    pub ext_next_wr: Cycle,
    /// Cycle of the last host command addressed to this rank (the die's
    /// command mux can take one command per cycle).
    pub last_host_cmd_at: Option<Cycle>,
    /// Cycle of the last NDA-controller command to this rank.
    pub last_nda_cmd_at: Option<Cycle>,
    /// Issue times of the most recent ACTs, for the tFAW window.
    faw_window: VecDeque<Cycle>,
    /// Cycle at which an in-progress refresh completes (0 if none).
    pub refresh_done_at: Cycle,
    /// Number of all-bank refreshes performed.
    pub refreshes: u64,
    /// State epoch: bumped by [`crate::Channel::apply`] whenever a command
    /// can change the outcome of `ready_at`/`plan_access` for a *host*
    /// access to this rank (every command to the rank, plus host column
    /// commands anywhere on the channel, whose external-bus constraints
    /// reach every rank). While a rank's epoch is unchanged, any memoized
    /// `(plan_access, ready_at)` for a host access to that rank remains
    /// exact.
    pub(crate) epoch: u64,
    /// Like `epoch`, but for *NDA* accesses: NDA reads/writes never touch
    /// the external bus, so commands to other ranks (whose only reach is
    /// `ext_next_rd`/`ext_next_wr`) leave this epoch alone. Bumped only by
    /// commands addressed to this rank.
    pub(crate) nda_epoch: u64,
}

impl Rank {
    /// A fresh rank with no timing debt.
    pub fn new() -> Self {
        Self {
            faw_window: VecDeque::with_capacity(4),
            ..Self::default()
        }
    }

    /// The host-access memoization epoch (see the field docs).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The NDA-access memoization epoch (see the field docs).
    #[inline]
    pub fn nda_epoch(&self) -> u64 {
        self.nda_epoch
    }

    /// Earliest cycle at which a new ACT satisfies the four-activate window.
    pub fn faw_ready_at(&self, faw: u32) -> Cycle {
        if self.faw_window.len() < 4 {
            0
        } else {
            self.faw_window.front().copied().unwrap_or(0) + Cycle::from(faw)
        }
    }

    /// Record an ACT at `now` in the tFAW window.
    pub(crate) fn record_act(&mut self, now: Cycle) {
        if self.faw_window.len() == 4 {
            self.faw_window.pop_front();
        }
        self.faw_window.push_back(now);
    }

    /// True while an all-bank refresh is in progress at `now`.
    #[inline]
    pub fn refreshing(&self, now: Cycle) -> bool {
        now < self.refresh_done_at
    }

    /// True if the die's command mux already carried a command this cycle
    /// (one command per cycle, host or NDA).
    #[inline]
    pub fn cmd_mux_busy(&self, now: Cycle) -> bool {
        self.last_host_cmd_at == Some(now) || self.last_nda_cmd_at == Some(now)
    }

    /// Serialize every register, including the tFAW window and both
    /// memoization epochs (snapshot support). Epochs must survive a
    /// round trip verbatim: schedulers key their plan memos on them.
    #[cold]
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.varint(self.next_rd);
        w.varint(self.next_wr);
        w.varint(self.next_act);
        w.varint(self.ext_next_rd);
        w.varint(self.ext_next_wr);
        w.opt_cycle(self.last_host_cmd_at);
        w.opt_cycle(self.last_nda_cmd_at);
        w.varint(self.faw_window.len() as u64);
        for &t in &self.faw_window {
            w.varint(t);
        }
        w.varint(self.refresh_done_at);
        w.varint(self.refreshes);
        w.varint(self.epoch);
        w.varint(self.nda_epoch);
    }

    /// Overwrite this rank's registers from a snapshot.
    ///
    /// # Errors
    ///
    /// Rejects a tFAW window longer than its hardware depth of four.
    #[cold]
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.next_rd = r.varint()?;
        self.next_wr = r.varint()?;
        self.next_act = r.varint()?;
        self.ext_next_rd = r.varint()?;
        self.ext_next_wr = r.varint()?;
        self.last_host_cmd_at = r.opt_cycle()?;
        self.last_nda_cmd_at = r.opt_cycle()?;
        let n = r.varint_usize()?;
        if n > 4 {
            return Err(CodecError::Corrupt("tFAW window deeper than 4"));
        }
        self.faw_window.clear();
        for _ in 0..n {
            self.faw_window.push_back(r.varint()?);
        }
        self.refresh_done_at = r.varint()?;
        self.refreshes = r.varint()?;
        self.epoch = r.varint()?;
        self.nda_epoch = r.varint()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faw_window_tracks_last_four() {
        let mut r = Rank::new();
        let faw = 26;
        assert_eq!(r.faw_ready_at(faw), 0);
        for t in [10, 20, 30] {
            r.record_act(t);
            assert_eq!(r.faw_ready_at(faw), 0, "fewer than 4 ACTs never blocks");
        }
        r.record_act(40);
        assert_eq!(r.faw_ready_at(faw), 10 + 26);
        r.record_act(50);
        // Window slides: oldest is now 20.
        assert_eq!(r.faw_ready_at(faw), 20 + 26);
    }
}
