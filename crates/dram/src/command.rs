//! DRAM commands and their issuers.

use crate::codec::{ByteReader, ByteWriter, CodecError};

/// The DRAM command types modeled by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Activate (open) a row.
    Act,
    /// Precharge (close) one bank.
    Pre,
    /// Precharge all banks in a rank.
    PreAll,
    /// Column read (one cache-line burst).
    Rd,
    /// Column write (one cache-line burst).
    Wr,
    /// All-bank refresh.
    RefAb,
}

impl CommandKind {
    /// True for column commands that move data on the bus.
    #[inline]
    pub fn is_column(self) -> bool {
        matches!(self, CommandKind::Rd | CommandKind::Wr)
    }

    /// True for row commands (activate / precharge family).
    #[inline]
    pub fn is_row(self) -> bool {
        matches!(
            self,
            CommandKind::Act | CommandKind::Pre | CommandKind::PreAll
        )
    }
}

/// Which side of the channel issued a command — the host memory controller
/// or a near-data-accelerator controller. Used for statistics, energy
/// accounting, and the idle-gap histogram of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Issuer {
    /// The host (CPU-side) memory controller.
    Host,
    /// A rank-local NDA memory controller.
    Nda,
}

/// A fully-addressed DRAM command within one channel.
///
/// `row`/`col` are ignored for commands that do not need them (`Pre`,
/// `PreAll`, `RefAb`). Columns are in cache-line-burst units
/// (0..`lines_per_row`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Command {
    /// Command type.
    pub kind: CommandKind,
    /// Target rank within the channel.
    pub rank: usize,
    /// Target bank group.
    pub bankgroup: usize,
    /// Target bank within the bank group.
    pub bank: usize,
    /// Target row (Act only).
    pub row: u32,
    /// Target column in cache-line units (Rd/Wr only).
    pub col: u32,
}

impl Command {
    /// Activate `row` in the addressed bank.
    pub fn act(rank: usize, bankgroup: usize, bank: usize, row: u32) -> Self {
        Self {
            kind: CommandKind::Act,
            rank,
            bankgroup,
            bank,
            row,
            col: 0,
        }
    }

    /// Precharge the addressed bank.
    pub fn pre(rank: usize, bankgroup: usize, bank: usize) -> Self {
        Self {
            kind: CommandKind::Pre,
            rank,
            bankgroup,
            bank,
            row: 0,
            col: 0,
        }
    }

    /// Precharge every bank in `rank`.
    pub fn pre_all(rank: usize) -> Self {
        Self {
            kind: CommandKind::PreAll,
            rank,
            bankgroup: 0,
            bank: 0,
            row: 0,
            col: 0,
        }
    }

    /// Read one cache-line burst from the open row.
    ///
    /// `row` is carried for trace readability and checker cross-validation;
    /// the device uses the currently open row.
    pub fn rd(rank: usize, bankgroup: usize, bank: usize, row: u32, col: u32) -> Self {
        Self {
            kind: CommandKind::Rd,
            rank,
            bankgroup,
            bank,
            row,
            col,
        }
    }

    /// Write one cache-line burst to the open row.
    pub fn wr(rank: usize, bankgroup: usize, bank: usize, row: u32, col: u32) -> Self {
        Self {
            kind: CommandKind::Wr,
            rank,
            bankgroup,
            bank,
            row,
            col,
        }
    }

    /// All-bank refresh of `rank`.
    pub fn ref_ab(rank: usize) -> Self {
        Self {
            kind: CommandKind::RefAb,
            rank,
            bankgroup: 0,
            bank: 0,
            row: 0,
            col: 0,
        }
    }

    /// Flat bank index within the rank (`bankgroup * banks_per_group + bank`).
    #[inline]
    pub fn flat_bank(&self, banks_per_group: usize) -> usize {
        self.bankgroup * banks_per_group + self.bank
    }

    /// Serialize the command (snapshot support): kind as its index in
    /// declaration order, then the address fields as varints.
    #[cold]
    pub fn encode_state(&self, w: &mut ByteWriter) {
        let k = match self.kind {
            CommandKind::Act => 0u8,
            CommandKind::Pre => 1,
            CommandKind::PreAll => 2,
            CommandKind::Rd => 3,
            CommandKind::Wr => 4,
            CommandKind::RefAb => 5,
        };
        w.u8(k);
        w.varint(self.rank as u64);
        w.varint(self.bankgroup as u64);
        w.varint(self.bank as u64);
        w.varint(u64::from(self.row));
        w.varint(u64::from(self.col));
    }

    /// Decode a command written by [`encode_state`](Self::encode_state).
    ///
    /// # Errors
    ///
    /// Rejects an out-of-range kind byte and truncated input.
    #[cold]
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let kind = match r.u8()? {
            0 => CommandKind::Act,
            1 => CommandKind::Pre,
            2 => CommandKind::PreAll,
            3 => CommandKind::Rd,
            4 => CommandKind::Wr,
            5 => CommandKind::RefAb,
            _ => return Err(CodecError::Corrupt("command kind")),
        };
        Ok(Self {
            kind,
            rank: r.varint_usize()?,
            bankgroup: r.varint_usize()?,
            bank: r.varint_usize()?,
            row: r.varint_u32()?,
            col: r.varint_u32()?,
        })
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            CommandKind::Act => {
                write!(
                    f,
                    "ACT  r{} bg{} b{} row{}",
                    self.rank, self.bankgroup, self.bank, self.row
                )
            }
            CommandKind::Pre => {
                write!(f, "PRE  r{} bg{} b{}", self.rank, self.bankgroup, self.bank)
            }
            CommandKind::PreAll => write!(f, "PREA r{}", self.rank),
            CommandKind::Rd => write!(
                f,
                "RD   r{} bg{} b{} row{} col{}",
                self.rank, self.bankgroup, self.bank, self.row, self.col
            ),
            CommandKind::Wr => write!(
                f,
                "WR   r{} bg{} b{} row{} col{}",
                self.rank, self.bankgroup, self.bank, self.row, self.col
            ),
            CommandKind::RefAb => write!(f, "REF  r{}", self.rank),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(CommandKind::Rd.is_column());
        assert!(CommandKind::Wr.is_column());
        assert!(!CommandKind::Act.is_column());
        assert!(CommandKind::Act.is_row());
        assert!(CommandKind::PreAll.is_row());
        assert!(!CommandKind::RefAb.is_row());
        assert!(!CommandKind::RefAb.is_column());
    }

    #[test]
    fn flat_bank_indexing() {
        let c = Command::rd(1, 3, 2, 7, 5);
        assert_eq!(c.flat_bank(4), 14);
    }

    #[test]
    fn display_is_nonempty() {
        for c in [
            Command::act(0, 0, 0, 1),
            Command::pre(0, 0, 0),
            Command::pre_all(0),
            Command::rd(0, 0, 0, 1, 2),
            Command::wr(0, 0, 0, 1, 2),
            Command::ref_ab(0),
        ] {
            assert!(!format!("{c}").is_empty());
        }
    }
}
