//! Malformed-input hardening of the binary readers: truncated,
//! bit-flipped, and outright random byte streams fed to the codec
//! primitives and the CHTR trace parser must return `Err`, never panic,
//! never allocate absurdly, and never loop. (The snapshot reader gets
//! the same treatment in `chopim-core`'s `malformed_snapshot_props`.)

use chopim_dram::codec::{read_framed, ByteReader};
use chopim_dram::trace::{decode_trace, encode_trace, replay_bytes, TraceEvent};
use chopim_dram::DramConfig;
use proptest::prelude::*;

/// A deterministic little PRNG so corruption sites don't depend on
/// proptest internals.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small well-formed trace to corrupt.
fn good_trace() -> Vec<u8> {
    let events = [
        TraceEvent::Launch {
            cycle: 100,
            channel: 0,
            nda_local: 0,
            instr_id: 1,
        },
        TraceEvent::Completion {
            cycle: 900,
            instr_id: 1,
        },
    ];
    encode_trace(DramConfig::table_ii().state_fingerprint(), 1_000, &events)
}

/// Drain a reader through every typed accessor until it errors; the
/// point is that the *only* way out is `Err`, never a panic.
fn drain_reader(bytes: &[u8]) {
    let mut r = ByteReader::new(bytes);
    let mut i = 0usize;
    loop {
        let step = i % 8;
        let failed = match step {
            0 => r.varint().is_err(),
            1 => r.u8().is_err(),
            2 => r.u32().is_err(),
            3 => r.varint_usize().is_err(),
            4 => r.bool().is_err(),
            5 => r.opt_cycle().is_err(),
            6 => r.cycle_vec().is_err(),
            _ => r.u32_vec().is_err(),
        };
        if failed || r.is_empty() {
            break;
        }
        i += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure random bytes through every reader primitive: error or clean
    /// exhaustion, never a panic or unbounded allocation.
    #[test]
    fn prop_reader_survives_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        drain_reader(&bytes);
        // The framed-container reader too (wrong magic/version/CRC all
        // land in Err).
        let _ = read_framed(*b"CHSS", 2, &bytes);
        let _ = read_framed(*b"CHTR", 1, &bytes);
    }

    /// Random bytes are not a valid trace (or decode to one that merely
    /// fails/succeeds replay) — no panic either way.
    #[test]
    fn prop_trace_survives_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(t) = decode_trace(&bytes) {
            // A CRC collision is astronomically unlikely; if decode
            // somehow accepts, replay must still not panic.
            let _ = chopim_dram::trace::replay(&DramConfig::table_ii(), &t);
        }
        let _ = replay_bytes(&DramConfig::table_ii(), &bytes);
    }

    /// Truncating a well-formed trace at any point must error.
    #[test]
    fn prop_trace_truncation_errors(cut in 0usize..usize::MAX) {
        let good = good_trace();
        let cut = cut % good.len();
        prop_assert!(decode_trace(&good[..cut]).is_err(), "truncation at {cut} accepted");
    }

    /// Flipping any single bit of a well-formed trace must error (the
    /// container CRC covers every payload byte) — and never panic.
    #[test]
    fn prop_trace_bitflip_errors(site in any::<u64>()) {
        let mut bad = good_trace();
        let byte = (mix(site) as usize) % bad.len();
        let bit = (mix(site ^ 0xdead_beef) % 8) as u32;
        bad[byte] ^= 1 << bit;
        prop_assert!(
            decode_trace(&bad).is_err(),
            "bit {bit} of byte {byte} flipped and still accepted"
        );
    }
}

/// The round trip itself stays good (guards the corruption tests above
/// against a vacuously-failing encoder).
#[test]
fn well_formed_trace_still_decodes() {
    let good = good_trace();
    let t = decode_trace(&good).expect("well-formed trace");
    assert_eq!(t.end_cycle, 1_000);
    assert_eq!(t.events.len(), 2);
}
