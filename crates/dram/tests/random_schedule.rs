//! Cross-validation: drive the channel model with a greedy random command
//! generator mixing host and NDA issuers; every command the model
//! *accepts* must be accepted by the independently-written
//! [`TimingChecker`], and the model must never accept a structurally
//! illegal command.

use chopim_dram::{
    Command, CommandKind, DramConfig, DramSystem, Issuer, TimingChecker, TimingParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type TraceEntry = (u64, Command, Issuer);

/// Run a randomized open-page workload on channel 0 and return the trace.
/// Each cycle tries one host command first (host priority), then offers
/// each rank's NDA controller a try — mirroring the real arbitration.
fn random_trace(seed: u64, cycles: u64, cfg: &DramConfig, with_nda: bool) -> Vec<TraceEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mem = DramSystem::new(cfg.clone());
    let mut trace = Vec::new();
    let gen_cmd = |rng: &mut StdRng, mem: &DramSystem, rank: usize| {
        let bg = rng.gen_range(0..cfg.bankgroups);
        let bank = rng.gen_range(0..cfg.banks_per_group);
        let row = rng.gen_range(0..4u32);
        let col = rng.gen_range(0..cfg.lines_per_row() as u32);
        let kind = match rng.gen_range(0..10) {
            0..=2 => CommandKind::Act,
            3..=5 => CommandKind::Rd,
            6..=7 => CommandKind::Wr,
            8 => CommandKind::Pre,
            _ => CommandKind::RefAb,
        };
        match kind {
            CommandKind::Act => Command::act(rank, bg, bank, row),
            CommandKind::Pre => Command::pre(rank, bg, bank),
            CommandKind::Rd => {
                let open = mem
                    .channel(0)
                    .bank(rank, bg, bank)
                    .open_row()
                    .unwrap_or(row);
                Command::rd(rank, bg, bank, open, col)
            }
            CommandKind::Wr => {
                let open = mem
                    .channel(0)
                    .bank(rank, bg, bank)
                    .open_row()
                    .unwrap_or(row);
                Command::wr(rank, bg, bank, open, col)
            }
            CommandKind::RefAb => Command::ref_ab(rank),
            CommandKind::PreAll => unreachable!(),
        }
    };
    for now in 0..cycles {
        // Host tries a handful of random commands; first accepted wins.
        for _ in 0..6 {
            let rank = rng.gen_range(0..cfg.ranks_per_channel);
            let cmd = gen_cmd(&mut rng, &mem, rank);
            if mem.can_issue(0, &cmd, Issuer::Host, now) {
                mem.issue(0, &cmd, Issuer::Host, now)
                    .expect("can_issue implies issue");
                trace.push((now, cmd, Issuer::Host));
                break;
            }
        }
        if !with_nda {
            continue;
        }
        // Each rank's NDA controller gets an independent try (column and
        // row commands only — refresh stays host-managed).
        for rank in 0..cfg.ranks_per_channel {
            for _ in 0..3 {
                let cmd = gen_cmd(&mut rng, &mem, rank);
                if cmd.kind == CommandKind::RefAb {
                    continue;
                }
                if mem.can_issue(0, &cmd, Issuer::Nda, now) {
                    mem.issue(0, &cmd, Issuer::Nda, now)
                        .expect("can_issue implies issue");
                    trace.push((now, cmd, Issuer::Nda));
                    break;
                }
            }
        }
    }
    trace
}

#[test]
fn model_and_checker_agree_on_host_only_schedules() {
    let cfg = DramConfig::table_ii();
    for seed in 0..6u64 {
        let trace = random_trace(seed, 4000, &cfg, false);
        assert!(
            trace.len() > 100,
            "generator should make progress (seed {seed})"
        );
        let n = TimingChecker::check_trace(&cfg, trace.iter().copied())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(n as usize, trace.len());
    }
}

#[test]
fn model_and_checker_agree_on_concurrent_schedules() {
    let cfg = DramConfig::table_ii();
    for seed in 0..6u64 {
        let trace = random_trace(seed, 4000, &cfg, true);
        let nda = trace.iter().filter(|e| e.2 == Issuer::Nda).count();
        assert!(
            nda > 50,
            "NDA should get issue slots (seed {seed}, got {nda})"
        );
        TimingChecker::check_trace(&cfg, trace.iter().copied())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn model_and_checker_agree_without_refresh() {
    let cfg = DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh());
    let trace = random_trace(99, 6000, &cfg, true);
    TimingChecker::check_trace(&cfg, trace).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seed yields a checker-clean accepted schedule.
    #[test]
    fn prop_accepted_schedules_are_legal(seed in any::<u64>()) {
        let cfg = DramConfig::tiny();
        let trace = random_trace(seed, 1500, &cfg, true);
        prop_assert!(TimingChecker::check_trace(&cfg, trace).is_ok());
    }

    /// `can_issue == false` must hold right before the earliest legal cycle
    /// computed by `ready_at` and true at it (for structurally legal
    /// commands).
    #[test]
    fn prop_ready_at_is_tight(seed in any::<u64>()) {
        let cfg = DramConfig::tiny();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mem = DramSystem::new(cfg.clone());
        mem.issue(0, &Command::act(0, 0, 0, 1), Issuer::Host, 0).unwrap();
        let mut now = 1u64;
        for _ in 0..50 {
            let rank = rng.gen_range(0..cfg.ranks_per_channel);
            let bg = rng.gen_range(0..cfg.bankgroups);
            let bank = rng.gen_range(0..cfg.banks_per_group);
            let issuer = if rng.gen_bool(0.5) { Issuer::Host } else { Issuer::Nda };
            let open = mem.channel(0).bank(rank, bg, bank).open_row();
            let cmd = match (open, rng.gen_bool(0.5)) {
                (Some(row), true) => Command::rd(rank, bg, bank, row, 0),
                (Some(_), false) => Command::pre(rank, bg, bank),
                (None, _) => Command::act(rank, bg, bank, rng.gen_range(0..4)),
            };
            if let Some(ready) = mem.channel(0).ready_at(&cmd, issuer) {
                let ready = ready.max(now);
                if ready > now {
                    prop_assert!(!mem.can_issue(0, &cmd, issuer, ready - 1));
                }
                prop_assert!(mem.can_issue(0, &cmd, issuer, ready));
                mem.issue(0, &cmd, issuer, ready).unwrap();
                now = ready + 1;
            }
        }
    }
}
