//! Bulk-advance equivalence properties for the DRAM layer.
//!
//! The event-horizon fast-forward never ticks DRAM state: timing is kept
//! in absolute-cycle registers, so "advancing by n cycles" is the
//! identity on device state and legality questions are answered by
//! `ready_at`. These properties pin down that equivalence — jumping
//! straight to a computed cycle must be indistinguishable from probing
//! every intermediate cycle — for bank-state timers, refresh counters,
//! and the idle-gap histogram.

use chopim_dram::{Command, CommandKind, Cycle, DramConfig, DramSystem, Issuer, RankStats};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The first cycle at or after `from` at which `cmd` may issue, found the
/// naive way: probing one cycle at a time.
fn first_legal_by_scan(
    mem: &DramSystem,
    cmd: &Command,
    issuer: Issuer,
    from: Cycle,
    limit: Cycle,
) -> Option<Cycle> {
    (from..from + limit).find(|&t| mem.can_issue(0, cmd, issuer, t))
}

/// Generate a structurally legal random command for the current state.
fn gen_cmd(rng: &mut StdRng, mem: &DramSystem, cfg: &DramConfig) -> (Command, Issuer) {
    let rank = rng.gen_range(0..cfg.ranks_per_channel);
    let bg = rng.gen_range(0..cfg.bankgroups);
    let bank = rng.gen_range(0..cfg.banks_per_group);
    let issuer = if rng.gen_bool(0.5) {
        Issuer::Host
    } else {
        Issuer::Nda
    };
    let open = mem.channel(0).bank(rank, bg, bank).open_row();
    let cmd = match (open, rng.gen_range(0..4u32)) {
        // Refresh requires every bank in the rank closed.
        (_, 0) if mem.channel(0).all_banks_closed(rank) => Command::ref_ab(rank),
        (Some(row), 1) => Command::rd(rank, bg, bank, row, rng.gen_range(0..4)),
        (Some(row), 2) => Command::wr(rank, bg, bank, row, rng.gen_range(0..4)),
        (Some(_), _) => Command::pre(rank, bg, bank),
        (None, _) => Command::act(rank, bg, bank, rng.gen_range(0..4)),
    };
    // Refresh is host-managed.
    let issuer = if cmd.kind == CommandKind::RefAb {
        Issuer::Host
    } else {
        issuer
    };
    (cmd, issuer)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Jumping to `ready_at` equals probing every cycle one at a time —
    /// for ACT/PRE/RD/WR (bank-state timers, tFAW) and REF (refresh
    /// counters: tRFC blackout, post-refresh ACT gating). This is the
    /// soundness core of event-horizon skipping: there is never a legal
    /// issue cycle strictly before the computed horizon.
    #[test]
    fn prop_ready_at_equals_per_cycle_scan(seed in any::<u64>()) {
        let cfg = DramConfig::tiny();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mem = DramSystem::new(cfg.clone());
        let mut now: Cycle = 0;
        for _ in 0..60 {
            let (cmd, issuer) = gen_cmd(&mut rng, &mem, &cfg);
            let Some(ready) = mem.ready_at(0, &cmd, issuer) else {
                continue; // structurally illegal right now
            };
            let ready = ready.max(now);
            let scanned = first_legal_by_scan(&mem, &cmd, issuer, now, 3000);
            prop_assert_eq!(
                scanned, Some(ready),
                "scan vs ready_at for {:?} ({:?}) from {}", cmd, issuer, now
            );
            mem.issue(0, &cmd, issuer, ready).unwrap();
            // Advance past the issue cycle (the command/mux bus blocks
            // same-cycle re-probes by design; `ready_at` is timing-only).
            now = ready + rng.gen_range(1..4u64);
        }
    }

    /// The idle-gap histogram is chunking-invariant: marking host
    /// activity one cycle at a time produces exactly the same histogram
    /// as marking whole busy spans, for any random span schedule. This is
    /// what lets the fast-forward account activity at event granularity
    /// rather than per cycle.
    #[test]
    fn prop_idle_histogram_bulk_equals_single_cycles(
        seed in any::<u64>(),
        spans in 1usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bulk = RankStats::default();
        let mut stepped = RankStats::default();
        let mut t: Cycle = 0;
        for _ in 0..spans {
            t += rng.gen_range(0..1500u64); // idle gap (possibly zero)
            let len = rng.gen_range(1..20u64); // busy span
            bulk.mark_host_activity(t, t + len);
            for c in t..t + len {
                stepped.mark_host_activity(c, c + 1);
            }
            t += len;
        }
        let end = t + rng.gen_range(0..2000u64);
        bulk.finalize(end);
        stepped.finalize(end);
        prop_assert_eq!(&bulk.idle, &stepped.idle);
    }

    /// Refresh counters under time jumps: after a REF, the rank is blocked
    /// for exactly tRFC regardless of whether the clock is probed cycle by
    /// cycle or jumped straight to the horizon.
    #[test]
    fn prop_refresh_blackout_is_jump_invariant(jump in 1u64..600) {
        let cfg = DramConfig::table_ii();
        let mut mem = DramSystem::new(cfg.clone());
        mem.issue(0, &Command::ref_ab(0), Issuer::Host, 10).unwrap();
        let done = 10 + u64::from(cfg.timing.rfc);
        let act = Command::act(0, 0, 0, 1);
        // Probe at an arbitrary jumped-to cycle: legality depends only on
        // the absolute clock, never on intermediate probes.
        let probe = 10 + jump;
        prop_assert_eq!(mem.can_issue(0, &act, Issuer::Host, probe), probe >= done);
        prop_assert_eq!(mem.ready_at(0, &act, Issuer::Host), Some(done));
    }
}
