//! Epoch-memo soundness properties.
//!
//! The schedulers memoize `(plan_access, ready_at)` per pending access,
//! keyed on the target rank's state epoch, and trust the memo while the
//! epoch is unchanged. That is only sound if the device model bumps the
//! epoch on *every* command that could change those answers. These
//! properties drive random legal command streams and verify, after every
//! single issue (including refreshes), that:
//!
//! * a memo whose epoch still matches equals a fresh recomputation
//!   (host memos against [`chopim_dram::Rank::epoch`], NDA memos against
//!   [`chopim_dram::Rank::nda_epoch`]);
//! * epochs never move backwards.

use chopim_dram::{Command, CommandKind, Cycle, DramConfig, DramSystem, Issuer, TimingParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A probe: one hypothetical column access whose plan+ready we memoize.
#[derive(Clone, Copy)]
struct Probe {
    rank: usize,
    bg: usize,
    bank: usize,
    row: u32,
    col: u32,
    write: bool,
    issuer: Issuer,
}

#[derive(Clone, Copy)]
struct Memo {
    epoch: u64,
    cmd: Command,
    ready: Cycle,
}

fn compute(mem: &DramSystem, p: &Probe) -> (Command, Cycle) {
    mem.channel(0)
        .plan_and_ready(p.rank, p.bg, p.bank, p.row, p.col, p.write, p.issuer)
}

fn epoch_of(mem: &DramSystem, p: &Probe) -> u64 {
    match p.issuer {
        Issuer::Host => mem.channel(0).rank_epoch(p.rank),
        Issuer::Nda => mem.channel(0).rank_nda_epoch(p.rank),
    }
}

/// Generate a structurally legal random command for the current state.
fn gen_cmd(rng: &mut StdRng, mem: &DramSystem, cfg: &DramConfig) -> (Command, Issuer) {
    let rank = rng.gen_range(0..cfg.ranks_per_channel);
    let bg = rng.gen_range(0..cfg.bankgroups);
    let bank = rng.gen_range(0..cfg.banks_per_group);
    let issuer = if rng.gen_bool(0.5) {
        Issuer::Host
    } else {
        Issuer::Nda
    };
    let open = mem.channel(0).bank(rank, bg, bank).open_row();
    let cmd = match (open, rng.gen_range(0..5u32)) {
        (_, 0) if mem.channel(0).all_banks_closed(rank) => Command::ref_ab(rank),
        (Some(row), 1) => Command::rd(rank, bg, bank, row, rng.gen_range(0..4)),
        (Some(row), 2) => Command::wr(rank, bg, bank, row, rng.gen_range(0..4)),
        (Some(_), 3) => Command::pre_all(rank),
        (Some(_), _) => Command::pre(rank, bg, bank),
        (None, _) => Command::act(rank, bg, bank, rng.gen_range(0..4)),
    };
    // Refresh and PREA are host-managed in this model's schedulers.
    let issuer = if matches!(cmd.kind, CommandKind::RefAb | CommandKind::PreAll) {
        Issuer::Host
    } else {
        issuer
    };
    (cmd, issuer)
}

fn run_case(seed: u64, refresh: bool, steps: usize) {
    let cfg = if refresh {
        DramConfig::table_ii()
    } else {
        DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh())
    };
    let mut mem = DramSystem::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed);

    // A spread of probes over ranks/banks/rows, both issuers.
    let mut probes = Vec::new();
    for rank in 0..cfg.ranks_per_channel {
        for k in 0..6 {
            probes.push(Probe {
                rank,
                bg: k % cfg.bankgroups,
                bank: (k / 2) % cfg.banks_per_group,
                row: (k % 3) as u32,
                col: k as u32 % 4,
                write: k % 2 == 0,
                issuer: if k % 3 == 0 {
                    Issuer::Nda
                } else {
                    Issuer::Host
                },
            });
        }
    }
    let mut memos: Vec<Memo> = probes
        .iter()
        .map(|p| {
            let (cmd, ready) = compute(&mem, p);
            Memo {
                epoch: epoch_of(&mem, p),
                cmd,
                ready,
            }
        })
        .collect();

    let mut now: Cycle = 0;
    let mut issued = 0;
    while issued < steps {
        let (cmd, issuer) = gen_cmd(&mut rng, &mem, &cfg);
        let epochs_before: Vec<u64> = (0..cfg.ranks_per_channel)
            .map(|r| mem.channel(0).rank_epoch(r))
            .collect();
        if mem.issue(0, &cmd, issuer, now).is_ok() {
            issued += 1;
            // Epoch monotonicity: never backwards, own rank always bumped.
            for (r, &before) in epochs_before.iter().enumerate() {
                assert!(mem.channel(0).rank_epoch(r) >= before);
            }
            assert!(
                mem.channel(0).rank_epoch(cmd.rank) > epochs_before[cmd.rank],
                "command to rank {} must bump its epoch",
                cmd.rank
            );
            // The memo contract: matching epoch ⇒ memo equals a fresh
            // computation, for every probe after every issue.
            for (p, m) in probes.iter().zip(memos.iter_mut()) {
                let epoch = epoch_of(&mem, p);
                let (cmd_now, ready_now) = compute(&mem, p);
                if m.epoch == epoch {
                    assert_eq!(
                        (m.cmd, m.ready),
                        (cmd_now, ready_now),
                        "stale memo accepted: probe rank {} issuer {:?} after {:?}",
                        p.rank,
                        p.issuer,
                        cmd
                    );
                } else {
                    *m = Memo {
                        epoch,
                        cmd: cmd_now,
                        ready: ready_now,
                    };
                }
            }
        }
        now += rng.gen_range(1u64..6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Memoized `ready_at` equals a fresh `ready_at` after every issue
    /// whenever the keying epoch is unchanged (no refresh traffic).
    #[test]
    fn memo_matches_fresh_without_refresh(seed in 0u64..1_000_000) {
        run_case(seed, false, 120);
    }

    /// Same, with periodic refresh in the stream (REF moves
    /// `refresh_done_at` and bank `next_act`, and must invalidate).
    #[test]
    fn memo_matches_fresh_with_refresh(seed in 0u64..1_000_000) {
        run_case(seed, true, 120);
    }
}
