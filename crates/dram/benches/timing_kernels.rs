//! Micro-benchmarks for the busy-path kernels: `ready_at`,
//! `plan_access`/`plan_kind_and_ready`, and the host scheduler's
//! candidate pick over a full queue. These are the per-cycle costs the
//! epoch memos and queue indexes exist to avoid — run them when touching
//! the timing checker or the scheduler to see the kernel cost directly
//! (`make perf-micro`, or `cargo bench -p chopim-dram`).

use criterion::{criterion_group, criterion_main, Criterion};

use chopim_core::sched::{HostMc, HostTransaction, TxMeta};
use chopim_dram::{Command, DramAddress, DramConfig, DramSystem, Issuer, TimingParams};

fn busy_system() -> DramSystem {
    let cfg = DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh());
    let mut mem = DramSystem::new(cfg);
    // Open a spread of rows and issue some columns so every timing
    // register holds a nontrivial value.
    let mut now = 0;
    for rank in 0..2 {
        for bg in 0..4 {
            let act = Command::act(rank, bg, 0, (bg % 3) as u32);
            while !mem.can_issue(0, &act, Issuer::Host, now) {
                now += 1;
            }
            mem.issue(0, &act, Issuer::Host, now).unwrap();
            now += 1;
        }
    }
    for rank in 0..2 {
        let rd = Command::rd(rank, 0, 0, 0, 0);
        while !mem.can_issue(0, &rd, Issuer::Host, now) {
            now += 1;
        }
        mem.issue(0, &rd, Issuer::Host, now).unwrap();
        now += 1;
    }
    mem
}

fn bench_ready_at(c: &mut Criterion) {
    let mem = busy_system();
    let cmds = [
        Command::rd(0, 0, 0, 0, 1),
        Command::wr(1, 0, 0, 0, 2),
        Command::act(0, 1, 1, 5),
        Command::pre(1, 2, 0),
    ];
    c.bench_function("ready_at (4 cmds, host+nda)", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for cmd in &cmds {
                acc ^= mem.ready_at(0, cmd, Issuer::Host).unwrap_or(0);
                acc ^= mem.ready_at(0, cmd, Issuer::Nda).unwrap_or(0);
            }
            acc
        })
    });
}

fn bench_plan_access(c: &mut Criterion) {
    let mem = busy_system();
    c.bench_function("plan_kind_and_ready (8 accesses)", |b| {
        b.iter(|| {
            let ch = mem.channel(0);
            let mut acc = 0u64;
            for k in 0..8usize {
                let (_, ready) = ch.plan_kind_and_ready(
                    k % 2,
                    k % 4,
                    (k / 2) % 4,
                    (k % 3) as u32,
                    k % 2 == 0,
                    if k % 3 == 0 {
                        Issuer::Nda
                    } else {
                        Issuer::Host
                    },
                );
                acc ^= ready;
            }
            acc
        })
    });
}

fn bench_sched_pick(c: &mut Criterion) {
    let cfg = DramConfig::table_ii().with_timing(TimingParams::ddr4_2400_no_refresh());
    // A full 32-entry read queue over a spread of banks/rows, against a
    // device state where some banks are open: the canonical busy pick.
    let mk = || {
        let mem = busy_system();
        let mut mc = HostMc::new(
            cfg.ranks_per_channel,
            cfg.bankgroups,
            cfg.banks_per_group,
            cfg.timing.refi,
        );
        for k in 0..32usize {
            let ok = mc.try_push(HostTransaction {
                addr: DramAddress {
                    channel: 0,
                    rank: k % 2,
                    bankgroup: k % 4,
                    bank: (k / 4) % 4,
                    row: (k % 5) as u32,
                    col: (k % 8) as u32,
                },
                is_write: false,
                meta: TxMeta::CoreRead {
                    core: 0,
                    req: k as u64,
                },
                arrival: 0,
            });
            assert!(ok);
        }
        (mem, mc)
    };
    c.bench_function("scheduler pick (32-entry queue, memo warm)", |b| {
        let (mut mem, mut mc) = mk();
        // Warm the memos once; ticks at a far-future cycle where the bus
        // is free but many candidates exist.
        let mut now = 10_000;
        b.iter(|| {
            let r = mc.tick(mem.channel_mut(0), now);
            now += 1;
            r.is_some()
        })
    });
}

criterion_group!(benches, bench_ready_at, bench_plan_access, bench_sched_pick);
criterion_main!(benches);
