//! The analyzer against the real workspace: the live tree must be
//! clean, and known single-line mutations of real sources must fire.
//! The mutation tests are the analyzer's own lockstep suite — they
//! prove the passes still *can* find the bugs they exist for, so a
//! refactor that silently blinds a pass fails here.

use std::path::Path;

use chopim_lint::Workspace;

fn repo_root() -> &'static Path {
    // crates/lint -> workspace root.
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn read(rel: &str) -> String {
    let p = repo_root().join(rel);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

#[test]
fn real_workspace_is_clean() {
    let ws = Workspace::load(repo_root()).expect("load workspace");
    assert!(
        ws.files.len() > 40,
        "suspiciously few files scanned: {}",
        ws.files.len()
    );
    let diags = ws.run();
    assert!(
        diags.is_empty(),
        "workspace not lint-clean:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn deleting_a_snapshot_write_fires_the_snapshot_pass() {
    // The exact bug the pass exists for: a field serialized yesterday,
    // silently dropped from the encoder today.
    let orig = read("crates/core/src/system.rs");
    let needle = "w.varint(self.next_launch);";
    assert!(orig.contains(needle), "mutation anchor moved; update test");

    // Control: the unmutated file produces no next_launch finding.
    let clean = Workspace::from_sources(&[("crates/core/src/system.rs", &orig)]);
    assert!(
        !clean
            .run()
            .iter()
            .any(|d| d.pass == "snapshot" && d.msg.contains("next_launch")),
        "control run already flags next_launch"
    );

    let mutated = orig.replace(needle, "");
    let ws = Workspace::from_sources(&[("crates/core/src/system.rs", &mutated)]);
    assert!(
        ws.run().iter().any(|d| d.pass == "snapshot"
            && d.msg.contains("`next_launch`")
            && d.msg.contains("encode")),
        "dropping the next_launch write did not fire the snapshot pass"
    );
}

#[test]
fn unallowed_hashmap_in_shard_fires_the_determinism_pass() {
    let orig = read("crates/core/src/shard.rs");

    // Control: the real shard is determinism-clean.
    let clean = Workspace::from_sources(&[("crates/core/src/shard.rs", &orig)]);
    assert!(
        !clean.run().iter().any(|d| d.pass == "determinism"),
        "control run already has determinism findings"
    );

    let mutated = format!(
        "{orig}\nfn lint_probe() {{ let m: std::collections::HashMap<u32, u32> = make(); }}\n"
    );
    let ws = Workspace::from_sources(&[("crates/core/src/shard.rs", &mutated)]);
    assert!(
        ws.run()
            .iter()
            .any(|d| d.pass == "determinism" && d.msg.contains("HashMap")),
        "an un-allowed HashMap in shard.rs did not fire the determinism pass"
    );
}

#[test]
fn stripping_cold_from_a_real_codec_fires_the_coldpath_pass() {
    let orig = read("crates/dram/src/trace.rs");
    let needle = "#[cold]";
    assert!(orig.contains(needle), "trace.rs lost its #[cold] markers");
    let mutated = orig.replacen(needle, "", 1);
    let ws = Workspace::from_sources(&[("crates/dram/src/trace.rs", &mutated)]);
    assert!(
        ws.run().iter().any(|d| d.pass == "coldpath"),
        "removing a #[cold] in trace.rs did not fire the coldpath pass"
    );
}
