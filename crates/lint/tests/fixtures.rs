//! Per-pass fixtures: each pass gets a minimal source that must fire
//! and a near-identical one that must stay clean, so a regression in
//! either direction (missed finding, false positive) fails here before
//! it reaches the real workspace.

use chopim_lint::Workspace;

fn findings_of(ws: &Workspace, pass: &str) -> Vec<String> {
    ws.run()
        .into_iter()
        .filter(|d| d.pass == pass)
        .map(|d| format!("{d}"))
        .collect()
}

// --- determinism -----------------------------------------------------

#[test]
fn determinism_flags_unordered_wallclock_and_float_order() {
    let ws = Workspace::from_sources(&[(
        "crates/core/src/probe.rs",
        "fn a() { let m: HashMap<u32, u32> = make(); }\n\
         fn b() { let t = Instant::now(); }\n\
         fn c(xs: &[f32]) { xs.sort_by(|p, q| p.partial_cmp(q).unwrap()); }\n\
         fn d(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }\n",
    )]);
    let found = findings_of(&ws, "determinism");
    assert_eq!(found.len(), 4, "{found:?}");
    assert!(found[0].contains("HashMap"));
    assert!(found[1].contains("Instant"));
    assert!(found[2].contains("partial_cmp"));
    assert!(found[3].contains("sum"));
}

#[test]
fn determinism_ignores_out_of_scope_tests_and_use_lines() {
    let ws = Workspace::from_sources(&[
        // chopim-exp is not a simulation crate: HashMap is fine there.
        (
            "crates/exp/src/probe.rs",
            "fn a() { let m: HashMap<u32, u32> = make(); }\n",
        ),
        // In scope, but only in a use line and inside #[cfg(test)].
        (
            "crates/core/src/probe.rs",
            "use std::collections::HashMap;\n\
             fn ok() { let m: BTreeMap<u32, u32> = make(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { let m: HashMap<u32, u32> = make(); let i = Instant::now(); }\n\
             }\n",
        ),
    ]);
    assert!(findings_of(&ws, "determinism").is_empty());
}

// --- snapshot completeness -------------------------------------------

const SNAPSHOT_GOOD: &str = "pub struct Meter { hits: u64, misses: u64 }\n\
     impl Meter {\n\
         #[cold]\n\
         pub fn snapshot(&self, w: &mut W) { w.varint(self.hits); w.varint(self.misses); }\n\
         #[cold]\n\
         pub fn resume(r: &mut R) -> Self { Meter { hits: r.varint(), misses: r.varint() } }\n\
     }\n";

#[test]
fn snapshot_complete_struct_is_clean() {
    let ws = Workspace::from_sources(&[("crates/core/src/meter.rs", SNAPSHOT_GOOD)]);
    assert!(findings_of(&ws, "snapshot").is_empty());
}

#[test]
fn snapshot_flags_field_missing_from_encode() {
    // Same struct, but the encode body forgot `misses`.
    let src = SNAPSHOT_GOOD.replace("w.varint(self.misses); ", "");
    let ws = Workspace::from_sources(&[("crates/core/src/meter.rs", &src)]);
    let found = findings_of(&ws, "snapshot");
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].contains("`misses`"), "{found:?}");
    assert!(found[0].contains("encode"), "{found:?}");
}

#[test]
fn snapshot_one_sided_signature_mention_does_not_cover() {
    // The config-input idiom: `resume(cfg: Config, ..)` consumes the
    // config, it does not serialize it — Config must stay uncovered.
    let ws = Workspace::from_sources(&[(
        "crates/core/src/cfgin.rs",
        "pub struct Config { seed: u64, window: u64 }\n\
         pub struct Sys { tick: u64 }\n\
         impl Sys {\n\
             #[cold]\n\
             pub fn snapshot(&self, w: &mut W) { w.varint(self.tick); }\n\
             #[cold]\n\
             pub fn resume(cfg: Config, r: &mut R) -> Self { Sys { tick: r.varint() } }\n\
         }\n",
    )]);
    assert!(findings_of(&ws, "snapshot").is_empty());
}

// --- shard boundary --------------------------------------------------

#[test]
fn boundary_flags_front_end_types_in_shard_files() {
    let ws = Workspace::from_sources(&[("crates/core/src/shard.rs", "fn peek(rt: &Runtime) {}\n")]);
    let found = findings_of(&ws, "boundary");
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(
        found[0].contains("`Runtime` is front-end-owned"),
        "{found:?}"
    );
}

#[test]
fn boundary_flags_shard_internals_in_front_end_files() {
    let ws = Workspace::from_sources(&[("crates/core/src/system.rs", "fn poke(mc: &HostMc) {}\n")]);
    let found = findings_of(&ws, "boundary");
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].contains("`HostMc` is shard-owned"), "{found:?}");
}

#[test]
fn boundary_exempts_the_exchange_meeting_point() {
    // exchange.rs is the typed message layer: both vocabularies meet.
    let ws = Workspace::from_sources(&[(
        "crates/core/src/exchange.rs",
        "fn route(rt: &Runtime, mc: &HostMc) {}\n",
    )]);
    assert!(findings_of(&ws, "boundary").is_empty());
}

// --- cold-path hygiene -----------------------------------------------

#[test]
fn coldpath_flags_codec_fns_without_cold() {
    let ws = Workspace::from_sources(&[(
        "crates/core/src/codecy.rs",
        "pub fn encode_state(w: &mut W) { w.byte(0); }\n\
         pub fn decode_state(r: &mut R) { r.byte(); }\n",
    )]);
    let found = findings_of(&ws, "coldpath");
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found[0].contains("encode_state"));
    assert!(found[1].contains("decode_state"));
}

#[test]
fn coldpath_accepts_cold_codecs_and_ignores_hot_fns() {
    let ws = Workspace::from_sources(&[(
        "crates/core/src/codecy.rs",
        "#[cold]\n\
         pub fn encode_state(w: &mut W) { w.byte(0); }\n\
         pub fn ready_at(now: u64) -> u64 { now + 1 }\n\
         pub fn set_default(v: u64) -> u64 { v }\n",
    )]);
    assert!(findings_of(&ws, "coldpath").is_empty());
}

// --- forbid(unsafe_code) ---------------------------------------------

#[test]
fn unsafe_pass_requires_forbid_on_crate_roots() {
    let ws = Workspace::from_sources(&[
        ("crates/foo/src/lib.rs", "pub fn x() {}\n"),
        (
            "crates/bar/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn y() {}\n",
        ),
        // Non-root files carry no obligation.
        ("crates/foo/src/inner.rs", "pub fn z() {}\n"),
    ]);
    let found = findings_of(&ws, "unsafe");
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(
        found[0].starts_with("crates/foo/src/lib.rs:1:"),
        "{found:?}"
    );
}
