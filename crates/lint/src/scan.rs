//! Item scanner: structs, functions, impl blocks, attributes, test
//! spans, and `use` spans, recovered from the token stream by brace
//! tracking.
//!
//! This is deliberately not a parser. It recognizes the handful of item
//! shapes the passes need — `fn` definitions with their attributes and
//! body spans, `struct` definitions with named fields, `impl` self
//! types, `#[cfg(test)]` / `mod tests` regions, and `use` declarations —
//! and treats everything else as opaque tokens. That keeps it a few
//! hundred lines, dependency-free, and robust to any code it does not
//! understand (unknown constructs simply contribute no items).

use crate::lexer::{lex, Directive, SpannedTok, Tok};

/// A scanned `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Whether the item carries `#[cold]`.
    pub has_cold: bool,
    /// Token index range of the signature (from after the name to the
    /// body's opening brace or the trailing `;`).
    pub sig: (usize, usize),
    /// Token index range of the body, brace-exclusive. Empty for
    /// body-less trait method declarations.
    pub body: (usize, usize),
    /// Self type when defined inside an `impl` block.
    pub self_ty: Option<String>,
    /// Whether the fn sits inside a `#[cfg(test)]`-gated region or
    /// carries the attribute itself.
    pub in_test: bool,
}

/// A scanned `struct` item with named fields (tuple and unit structs
/// contribute no fields).
#[derive(Debug)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// 1-indexed line of the `struct` keyword.
    pub line: u32,
    /// `(field name, 1-indexed line)` per named field.
    pub fields: Vec<(String, u32)>,
    /// Whether the struct sits inside a `#[cfg(test)]`-gated region.
    pub in_test: bool,
}

/// One fully scanned source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Token stream.
    pub toks: Vec<SpannedTok>,
    /// Suppression directives.
    pub directives: Vec<Directive>,
    /// All `fn` items.
    pub fns: Vec<FnItem>,
    /// All `struct` items.
    pub structs: Vec<StructItem>,
    /// Line ranges (inclusive) covered by test-gated regions.
    pub test_spans: Vec<(u32, u32)>,
    /// Token index ranges covered by `use` declarations.
    pub use_spans: Vec<(usize, usize)>,
    /// Identifiers appearing in crate/file-level inner attributes
    /// (`#![...]`), flattened.
    pub inner_attrs: Vec<String>,
}

impl ScannedFile {
    /// True when `line` falls inside a test-gated region.
    pub fn line_in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// True when token index `i` falls inside a `use` declaration.
    pub fn tok_in_use(&self, i: usize) -> bool {
        self.use_spans.iter().any(|&(a, b)| i >= a && i < b)
    }

    /// The identifier text of token `i`, if it is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match &self.toks[i].tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Find the token index just past the `}` matching the `{` at `open`.
fn match_brace(toks: &[SpannedTok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Scan one attribute starting at `#` (index `i`); returns (idents
/// inside it, index past the closing `]`, is_inner).
fn scan_attr(toks: &[SpannedTok], i: usize) -> (Vec<String>, usize, bool) {
    let mut j = i + 1;
    let inner = matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('!')));
    if inner {
        j += 1;
    }
    let mut idents = Vec::new();
    if !matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
        return (idents, j, inner);
    }
    let mut depth = 0usize;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (idents, j + 1, inner);
                }
            }
            Tok::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    (idents, j, inner)
}

/// Parse the named fields of a struct whose `{` is at `open`.
fn scan_fields(toks: &[SpannedTok], open: usize, close: usize) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let mut i = open + 1;
    // `close` points past the matching `}`.
    let end = close - 1;
    while i < end {
        // Skip field attributes.
        while matches!(toks[i].tok, Tok::Punct('#')) {
            let (_, next, _) = scan_attr(toks, i);
            i = next;
        }
        if i >= end {
            break;
        }
        // Skip visibility: `pub`, `pub(crate)`, `pub(in path)`.
        if let Tok::Ident(s) = &toks[i].tok {
            if s == "pub" {
                i += 1;
                if i < end && matches!(toks[i].tok, Tok::Punct('(')) {
                    let mut depth = 0usize;
                    while i < end {
                        match toks[i].tok {
                            Tok::Punct('(') => depth += 1,
                            Tok::Punct(')') => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
        }
        // Field name followed by `:`.
        let (name, line) = match &toks[i].tok {
            Tok::Ident(s) => (s.clone(), toks[i].line),
            _ => break,
        };
        i += 1;
        if i >= end || !matches!(toks[i].tok, Tok::Punct(':')) {
            break;
        }
        fields.push((name, line));
        // Skip the type up to the field-separating comma: a comma only
        // separates fields when every bracket depth (including angle
        // depth) is zero. `->` must not close an angle.
        let mut round = 0i32;
        let mut square = 0i32;
        let mut curly = 0i32;
        let mut angle = 0i32;
        let mut prev_dash = false;
        while i < end {
            match toks[i].tok {
                Tok::Punct('(') => round += 1,
                Tok::Punct(')') => round -= 1,
                Tok::Punct('[') => square += 1,
                Tok::Punct(']') => square -= 1,
                Tok::Punct('{') => curly += 1,
                Tok::Punct('}') => curly -= 1,
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') if !prev_dash && angle > 0 => angle -= 1,
                Tok::Punct(',') if round == 0 && square == 0 && curly == 0 && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            prev_dash = matches!(toks[i].tok, Tok::Punct('-'));
            i += 1;
        }
    }
    fields
}

/// Extract the impl self type from the header tokens between `impl` and
/// its `{`: the last path identifier at angle depth zero (handles
/// `impl Foo`, `impl Trait for Foo`, `impl<'a> Foo<'a>`).
fn impl_self_ty(toks: &[SpannedTok], start: usize, open: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    let mut prev_dash = false;
    for t in &toks[start..open] {
        match &t.tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') if !prev_dash && angle > 0 => angle -= 1,
            Tok::Ident(s)
                if angle == 0 && s != "for" && s != "where" && s != "dyn" && s != "impl" =>
            {
                last = Some(s.clone());
            }
            _ => {}
        }
        prev_dash = matches!(t.tok, Tok::Punct('-'));
    }
    last
}

/// Scan `src` (at workspace-relative `path`) into items.
pub fn scan(path: &str, src: &str) -> ScannedFile {
    let lexed = lex(src);
    let toks = lexed.toks;
    let mut f = ScannedFile {
        path: path.to_string(),
        directives: lexed.directives,
        fns: Vec::new(),
        structs: Vec::new(),
        test_spans: Vec::new(),
        use_spans: Vec::new(),
        inner_attrs: Vec::new(),
        toks: Vec::new(),
    };

    // Impl stack entries: (self type, token index past the impl's `}`).
    let mut impls: Vec<(Option<String>, usize)> = Vec::new();
    // Test-region ends (token index past `}`), for nesting.
    let mut test_ends: Vec<usize> = Vec::new();

    let mut pending_attrs: Vec<String> = Vec::new();
    let mut pending_cfg_test = false;
    let mut i = 0usize;
    while i < toks.len() {
        impls.retain(|&(_, end)| i < end);
        test_ends.retain(|&end| i < end);
        match &toks[i].tok {
            Tok::Punct('#') => {
                let (idents, next, inner) = scan_attr(&toks, i);
                if inner {
                    f.inner_attrs.extend(idents);
                } else {
                    if idents.iter().any(|s| s == "cfg") && idents.iter().any(|s| s == "test") {
                        pending_cfg_test = true;
                    }
                    pending_attrs.extend(idents);
                }
                i = next;
                continue;
            }
            Tok::Ident(kw) if kw == "use" => {
                let start = i;
                while i < toks.len() && !matches!(toks[i].tok, Tok::Punct(';')) {
                    i += 1;
                }
                f.use_spans.push((start, i));
                pending_attrs.clear();
                pending_cfg_test = false;
                i += 1;
                continue;
            }
            Tok::Ident(kw) if kw == "impl" => {
                let start = i;
                let mut j = i + 1;
                while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
                    j += 1;
                }
                if j < toks.len() && matches!(toks[j].tok, Tok::Punct('{')) {
                    let end = match_brace(&toks, j);
                    impls.push((impl_self_ty(&toks, start + 1, j), end));
                    if pending_cfg_test {
                        f.test_spans
                            .push((toks[i].line, toks[end.min(toks.len()) - 1].line));
                        test_ends.push(end);
                    }
                    pending_attrs.clear();
                    pending_cfg_test = false;
                    i = j + 1; // descend into the impl body
                    continue;
                }
                pending_attrs.clear();
                pending_cfg_test = false;
                i = j;
                continue;
            }
            Tok::Ident(kw) if kw == "mod" => {
                let name = toks.get(i + 1).and_then(|t| match &t.tok {
                    Tok::Ident(s) => Some(s.clone()),
                    _ => None,
                });
                let mut j = i + 1;
                while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
                    j += 1;
                }
                if j < toks.len() && matches!(toks[j].tok, Tok::Punct('{')) {
                    let end = match_brace(&toks, j);
                    if pending_cfg_test || name.as_deref() == Some("tests") {
                        f.test_spans
                            .push((toks[i].line, toks[end.min(toks.len()) - 1].line));
                        test_ends.push(end);
                    }
                    pending_attrs.clear();
                    pending_cfg_test = false;
                    i = j + 1; // descend into the module body
                    continue;
                }
                pending_attrs.clear();
                pending_cfg_test = false;
                i = j;
                continue;
            }
            Tok::Ident(kw) if kw == "struct" => {
                let name = match toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(s)) => s.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let line = toks[i].line;
                let mut j = i + 2;
                // Skip generics/where to the body opener, tracking angle
                // depth so `where T: Iterator<Item = u8>` commas and
                // parens do not confuse the search.
                while j < toks.len()
                    && !matches!(
                        toks[j].tok,
                        Tok::Punct('{') | Tok::Punct('(') | Tok::Punct(';')
                    )
                {
                    j += 1;
                }
                let mut fields = Vec::new();
                if j < toks.len() && matches!(toks[j].tok, Tok::Punct('{')) {
                    let end = match_brace(&toks, j);
                    fields = scan_fields(&toks, j, end);
                    i = end;
                } else if j < toks.len() && matches!(toks[j].tok, Tok::Punct('(')) {
                    // Tuple struct: skip to the trailing `;`.
                    while j < toks.len() && !matches!(toks[j].tok, Tok::Punct(';')) {
                        j += 1;
                    }
                    i = j + 1;
                } else {
                    i = j + 1;
                }
                f.structs.push(StructItem {
                    name,
                    line,
                    fields,
                    in_test: !test_ends.is_empty() || pending_cfg_test,
                });
                pending_attrs.clear();
                pending_cfg_test = false;
                continue;
            }
            Tok::Ident(kw) if kw == "fn" => {
                let name = match toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(s)) => s.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let line = toks[i].line;
                let sig_start = i + 2;
                let mut j = sig_start;
                while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
                    j += 1;
                }
                let (body, past) = if j < toks.len() && matches!(toks[j].tok, Tok::Punct('{')) {
                    let end = match_brace(&toks, j);
                    ((j + 1, end.saturating_sub(1)), end)
                } else {
                    ((j, j), j + 1)
                };
                f.fns.push(FnItem {
                    name,
                    line,
                    has_cold: pending_attrs.iter().any(|s| s == "cold"),
                    sig: (sig_start, j),
                    body,
                    self_ty: impls.last().and_then(|(t, _)| t.clone()),
                    in_test: !test_ends.is_empty() || pending_cfg_test,
                });
                pending_attrs.clear();
                pending_cfg_test = false;
                i = past;
                continue;
            }
            Tok::Ident(kw)
                if matches!(
                    kw.as_str(),
                    "pub" | "crate" | "in" | "const" | "static" | "async" | "unsafe" | "extern"
                ) =>
            {
                // Qualifiers between an attribute and its item must not
                // drop the pending attributes (`#[cold] pub fn ...`).
                i += 1;
                continue;
            }
            Tok::Ident(_) => {
                pending_attrs.clear();
                pending_cfg_test = false;
                i += 1;
                continue;
            }
            Tok::Punct(';') => {
                // End of a non-fn item (const, static, type alias):
                // its attributes must not leak onto the next item.
                pending_attrs.clear();
                pending_cfg_test = false;
                i += 1;
                continue;
            }
            _ => {
                i += 1;
                continue;
            }
        }
    }
    f.toks = toks;
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_fn_with_cold_and_impl_ty() {
        let f = scan(
            "x.rs",
            "impl Foo { #[cold] fn encode_state(&self) { self.a; } fn hot(&self) {} }",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "encode_state");
        assert!(f.fns[0].has_cold);
        assert_eq!(f.fns[0].self_ty.as_deref(), Some("Foo"));
        assert!(!f.fns[1].has_cold);
    }

    #[test]
    fn scans_struct_fields_with_generics() {
        let f = scan(
            "x.rs",
            "pub struct S<T> { pub a: HashMap<u64, u32>, b: Box<dyn FnMut(&mut R) -> bool>, c: [u8; 4] }",
        );
        let names: Vec<_> = f.structs[0].fields.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn test_mod_spans_cover_contents() {
        let f = scan(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\n",
        );
        assert!(!f.fns[0].in_test);
        assert!(f.fns[1].in_test);
        assert!(f.line_in_test(4));
        assert!(!f.line_in_test(1));
    }

    #[test]
    fn use_spans_marked() {
        let f = scan(
            "x.rs",
            "use std::collections::HashMap;\nfn f() { HashMap::new(); }",
        );
        let first_hm = f
            .toks
            .iter()
            .position(|t| t.tok == Tok::Ident("HashMap".into()))
            .unwrap();
        assert!(f.tok_in_use(first_hm));
        let second_hm = f
            .toks
            .iter()
            .skip(first_hm + 1)
            .position(|t| t.tok == Tok::Ident("HashMap".into()))
            .unwrap()
            + first_hm
            + 1;
        assert!(!f.tok_in_use(second_hm));
    }

    #[test]
    fn inner_attr_collected() {
        let f = scan("x.rs", "#![forbid(unsafe_code)]\nfn f() {}");
        assert!(f.inner_attrs.iter().any(|s| s == "forbid"));
        assert!(f.inner_attrs.iter().any(|s| s == "unsafe_code"));
    }

    #[test]
    fn tuple_struct_has_no_fields() {
        let f = scan("x.rs", "struct T(u32, u64);\nstruct U;\nstruct V { w: u8 }");
        assert_eq!(f.structs.len(), 3);
        assert!(f.structs[0].fields.is_empty());
        assert!(f.structs[1].fields.is_empty());
        assert_eq!(f.structs[2].fields.len(), 1);
    }
}
