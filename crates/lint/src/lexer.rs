//! A minimal Rust lexer: just enough tokenization for item scanning.
//!
//! The workspace builds offline (no `syn`), so the analyzer works on a
//! hand-rolled token stream. The lexer understands exactly the lexical
//! features that would otherwise corrupt a token-level scan — nested
//! block comments, string/char/byte/raw-string literals, lifetimes vs.
//! char literals — and throws everything else into four coarse token
//! kinds. Comments are dropped from the token stream, but
//! `// chopim-lint:` directive comments are collected on the side (the
//! suppression channel), and every comment line is remembered so
//! directives can bind to "the next code line".

/// One lexical token (comments and whitespace excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `struct`, `HashMap`, ...).
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String or byte-string literal, with its decoded-enough contents
    /// (escapes are kept verbatim; the passes only substring-match).
    Str(String),
    /// Numeric literal (value never matters to any pass).
    Num,
    /// Lifetime (`'a`) or char literal — neither matters to any pass,
    /// but both must be consumed as units so their contents are not
    /// misread as identifiers.
    Tick,
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-indexed line number.
    pub line: u32,
}

/// A `// chopim-lint: allow(<passes>) -- <reason>` suppression comment.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-indexed line the comment sits on.
    pub line: u32,
    /// Pass names inside `allow(...)`, as written.
    pub passes: Vec<String>,
    /// Free-text reason after `--` (trimmed; may be empty — the driver
    /// rejects empty reasons).
    pub reason: String,
    /// Whether the comment parsed as `allow(...) -- ...` at all.
    pub well_formed: bool,
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub toks: Vec<SpannedTok>,
    /// All `chopim-lint:` directive comments found.
    pub directives: Vec<Directive>,
}

/// Marker every directive comment must contain.
const DIRECTIVE_TAG: &str = "chopim-lint:";

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parse the text of one comment as a directive, if it carries the tag.
fn parse_directive(text: &str, line: u32) -> Option<Directive> {
    let at = text.find(DIRECTIVE_TAG)?;
    let body = text[at + DIRECTIVE_TAG.len()..].trim();
    let mut d = Directive {
        line,
        passes: Vec::new(),
        reason: String::new(),
        well_formed: false,
    };
    let Some(rest) = body.strip_prefix("allow") else {
        return Some(d);
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(d);
    };
    let Some(close) = rest.find(')') else {
        return Some(d);
    };
    d.passes = rest[..close]
        .split(',')
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect();
    let tail = rest[close + 1..].trim_start();
    if let Some(reason) = tail.strip_prefix("--") {
        d.reason = reason.trim().to_string();
    }
    d.well_formed = !d.passes.is_empty();
    Some(d)
}

/// Tokenize `src`. Never fails: unterminated constructs consume to EOF.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }
        // Line comment (also doc comments ///, //!).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            if let Some(d) = parse_directive(&text, line) {
                out.directives.push(d);
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump_line!(b[i]);
                    i += 1;
                }
            }
            let text: String = b[start..i.min(n)].iter().collect();
            if let Some(d) = parse_directive(&text, start_line) {
                out.directives.push(d);
            }
            continue;
        }
        // Raw strings / raw identifiers / byte strings: r"..", r#".."#,
        // br#".."#, b"..", r#ident.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (skip, raw_ok) = if c == 'b' && b[i + 1] == 'r' {
                (2, true)
            } else {
                (1, c == 'r')
            };
            let mut j = i + skip;
            if raw_ok && j < n && (b[j] == '#' || b[j] == '"') {
                let mut hashes = 0;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    // Raw (byte) string: scan for `"` followed by `hashes` #s.
                    j += 1;
                    let start_line = line;
                    let text_start = j;
                    'raw: while j < n {
                        if b[j] == '"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                break 'raw;
                            }
                        }
                        bump_line!(b[j]);
                        j += 1;
                    }
                    let text: String = b[text_start..j.min(n)].iter().collect();
                    out.toks.push(SpannedTok {
                        tok: Tok::Str(text),
                        line: start_line,
                    });
                    i = (j + 1 + hashes).min(n);
                    continue;
                } else if hashes > 0 && j < n && is_ident_start(b[j]) {
                    // Raw identifier r#ident.
                    let start = j;
                    while j < n && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    out.toks.push(SpannedTok {
                        tok: Tok::Ident(b[start..j].iter().collect()),
                        line,
                    });
                    i = j;
                    continue;
                }
            }
            if c == 'b' && i + 1 < n && b[i + 1] == '"' {
                // Byte string: fall through to the string scanner below
                // by consuming the `b` prefix.
                i += 1;
                // continue into string handling on the next loop turn
                // (b[i] is now '"').
                continue;
            }
            // Plain identifier starting with r/b: handled below.
        }
        // String literal.
        if c == '"' {
            let start_line = line;
            let mut j = i + 1;
            let mut text = String::new();
            while j < n {
                if b[j] == '\\' && j + 1 < n {
                    text.push(b[j]);
                    text.push(b[j + 1]);
                    j += 2;
                    continue;
                }
                if b[j] == '"' {
                    break;
                }
                bump_line!(b[j]);
                text.push(b[j]);
                j += 1;
            }
            out.toks.push(SpannedTok {
                tok: Tok::Str(text),
                line: start_line,
            });
            i = (j + 1).min(n);
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let mut j = i + 1;
            if j < n && b[j] == '\\' {
                // Escaped char literal: consume to closing quote.
                j += 2;
                while j < n && b[j] != '\'' {
                    j += 1;
                }
                i = (j + 1).min(n);
            } else if j + 1 < n && b[j + 1] == '\'' {
                // One-char literal 'x'.
                i = j + 2;
            } else if j < n && is_ident_start(b[j]) {
                // Lifetime: consume the identifier.
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                i = j;
            } else {
                i = j;
            }
            out.toks.push(SpannedTok {
                tok: Tok::Tick,
                line,
            });
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.toks.push(SpannedTok {
                tok: Tok::Ident(b[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Number (coarse: digits and the alphanumeric tail of radix or
        // suffix forms; `1.5` arrives as Num, Punct('.'), Num — fine).
        if c.is_ascii_digit() {
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.toks.push(SpannedTok {
                tok: Tok::Num,
                line,
            });
            continue;
        }
        // Everything else: one punctuation character.
        out.toks.push(SpannedTok {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_idents() {
        let src = r##"
            // HashMap in a comment
            /* nested /* HashMap */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" here"#;
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn lifetimes_and_chars() {
        let ids = idents("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(ids.contains(&"str".to_string()));
        // Lifetime name must not appear as an identifier.
        assert_eq!(ids.iter().filter(|s| *s == "a").count(), 0);
    }

    #[test]
    fn directive_parses() {
        let l = lex("let m = HashMap::new(); // chopim-lint: allow(determinism) -- keyed only\n");
        assert_eq!(l.directives.len(), 1);
        let d = &l.directives[0];
        assert!(d.well_formed);
        assert_eq!(d.passes, vec!["determinism"]);
        assert_eq!(d.reason, "keyed only");
    }

    #[test]
    fn directive_without_reason_is_flagged_not_dropped() {
        let l = lex("// chopim-lint: allow(snapshot)\n");
        assert_eq!(l.directives.len(), 1);
        assert!(l.directives[0].well_formed);
        assert!(l.directives[0].reason.is_empty());
    }

    #[test]
    fn string_line_accounting() {
        let l = lex("let a = \"two\nlines\";\nlet b = 1;");
        let b_line = l
            .toks
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap()
            .line;
        assert_eq!(b_line, 3);
    }
}
