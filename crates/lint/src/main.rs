//! CLI for the workspace analyzer.
//!
//! ```text
//! chopim-lint [WORKSPACE_ROOT]
//! ```
//!
//! Scans `crates/*/src/**/*.rs` under the root (default `.`), runs all
//! passes, prints `path:line: [pass] message` per finding, and exits
//! nonzero if anything survives suppression.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use chopim_lint::Workspace;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "chopim-lint: cannot load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let diags = ws.run();
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!(
            "chopim-lint: {} files clean ({} suppressions, all reasoned)",
            ws.files.len(),
            ws.files.iter().map(|f| f.directives.len()).sum::<usize>()
        );
        ExitCode::SUCCESS
    } else {
        println!("chopim-lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
