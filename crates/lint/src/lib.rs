//! # chopim-lint
//!
//! A workspace static analyzer that proves, at compile-review time, the
//! invariants the lockstep suites otherwise only catch dynamically:
//!
//! * **determinism** — no unordered-container iteration, wall-clock
//!   time, thread identity, pointer values, or order-sensitive float
//!   folds on any path that feeds `SimReport`;
//! * **snapshot** — every field of every snapshot-covered struct is
//!   mentioned in both an encode and a decode body (the "added a field,
//!   forgot the CHSS bump" bug);
//! * **boundary** — shard-side files never name front-end-owned types
//!   or modules and vice versa; all cross-boundary traffic goes through
//!   the typed messages in `exchange.rs`;
//! * **coldpath** — codec/snapshot/trace/fault fns carry `#[cold]` so
//!   their bodies stay out of the fast loop's layout;
//! * **unsafe** — every crate root carries `#![forbid(unsafe_code)]`.
//!
//! Findings are suppressible per line with
//! `// chopim-lint: allow(<pass>) -- <reason>` — the reason is
//! mandatory, unknown pass names are rejected, and suppressions that
//! match no finding are themselves findings (no stale allows). See
//! `docs/LINTS.md` for the full contract.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod passes;
pub mod scan;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use scan::ScannedFile;

/// All pass names, as accepted inside `allow(...)`.
pub const PASSES: [&str; 5] = ["determinism", "snapshot", "boundary", "coldpath", "unsafe"];

/// One finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Emitting pass (or `"lint"` for directive problems).
    pub pass: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.msg
        )
    }
}

/// A scanned workspace ready to analyze.
#[derive(Debug)]
pub struct Workspace {
    /// Scanned files, in load order.
    pub files: Vec<ScannedFile>,
}

impl Workspace {
    /// Build a workspace from in-memory `(path, source)` pairs (the
    /// fixture tests and the mutation tests use this).
    pub fn from_sources(sources: &[(&str, &str)]) -> Self {
        Self {
            files: sources.iter().map(|(p, s)| scan::scan(p, s)).collect(),
        }
    }

    /// Load every `crates/*/src/**/*.rs` file under `root`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            // The analyzer's own sources document the directive grammar
            // in prose (doc comments quoting `chopim-lint: allow(...)`),
            // which a self-scan would misread as malformed directives;
            // it is meta-tooling, not simulation code.
            if dir.file_name().is_some_and(|n| n == "lint") {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, root, &mut files)?;
            }
        }
        Ok(Self { files })
    }

    /// Run every pass and apply suppressions; returns the surviving
    /// diagnostics sorted by `(file, line, pass)`.
    pub fn run(&self) -> Vec<Diagnostic> {
        let mut raw = Vec::new();
        raw.extend(passes::determinism(&self.files));
        raw.extend(passes::snapshot(&self.files));
        raw.extend(passes::boundary(&self.files));
        raw.extend(passes::coldpath(&self.files));
        raw.extend(passes::forbid_unsafe(&self.files));

        let mut out = Vec::new();
        // Per-file suppression accounting.
        for f in &self.files {
            // Lines a directive at line L covers: L itself and the next
            // line holding any code token (so the comment can sit on
            // the flagged line or directly above it).
            let mut covers: Vec<(usize, u32)> = Vec::new(); // (directive, covered line)
            for (di, d) in f.directives.iter().enumerate() {
                if !d.well_formed {
                    out.push(Diagnostic {
                        file: f.path.clone(),
                        line: d.line,
                        pass: "lint",
                        msg: "malformed chopim-lint directive: expected \
                              `chopim-lint: allow(<pass>) -- <reason>`"
                            .to_string(),
                    });
                    continue;
                }
                for p in &d.passes {
                    if !PASSES.contains(&p.as_str()) {
                        out.push(Diagnostic {
                            file: f.path.clone(),
                            line: d.line,
                            pass: "lint",
                            msg: format!("unknown pass `{p}` in chopim-lint allow"),
                        });
                    }
                }
                if d.reason.is_empty() {
                    out.push(Diagnostic {
                        file: f.path.clone(),
                        line: d.line,
                        pass: "lint",
                        msg: "suppression without a reason: every allow must carry \
                              `-- <why this is sound>`"
                            .to_string(),
                    });
                    continue;
                }
                covers.push((di, d.line));
                if let Some(next) = f.toks.iter().map(|t| t.line).find(|&l| l > d.line) {
                    covers.push((di, next));
                }
            }
            let mut used = vec![false; f.directives.len()];
            for diag in raw.iter().filter(|d| d.file == f.path) {
                let suppressed = covers.iter().any(|&(di, l)| {
                    l == diag.line && f.directives[di].passes.iter().any(|p| p == diag.pass)
                });
                if suppressed {
                    for &(di, l) in &covers {
                        if l == diag.line && f.directives[di].passes.iter().any(|p| p == diag.pass)
                        {
                            used[di] = true;
                        }
                    }
                } else {
                    out.push(diag.clone());
                }
            }
            for (di, d) in f.directives.iter().enumerate() {
                if d.well_formed && !d.reason.is_empty() && !used[di] {
                    out.push(Diagnostic {
                        file: f.path.clone(),
                        line: d.line,
                        pass: "lint",
                        msg: format!(
                            "unused suppression: allow({}) matches no finding on this or \
                             the next line — delete it",
                            d.passes.join(", ")
                        ),
                    });
                }
            }
        }
        // Findings in files the workspace does not contain cannot
        // happen (passes only look at loaded files), so `out` is
        // complete; sort for stable presentation.
        out.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.pass).cmp(&(b.file.as_str(), b.line, b.pass))
        });
        out
    }
}

/// Recursively collect `.rs` files under `dir`, paths made
/// `root`-relative with `/` separators.
fn collect_rs(dir: &Path, root: &Path, files: &mut Vec<ScannedFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(scan::scan(&rel, &src));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_binds_to_same_and_next_line() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/foo.rs",
            "// chopim-lint: allow(determinism) -- keyed lookups only\n\
             fn f() { let m: HashMap<u32, u32> = make(); }\n",
        )]);
        assert!(ws.run().is_empty());
    }

    #[test]
    fn suppression_without_reason_fails() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/foo.rs",
            "fn f() { let m: HashMap<u32, u32> = make(); } // chopim-lint: allow(determinism)\n",
        )]);
        let diags = ws.run();
        assert!(diags.iter().any(|d| d.msg.contains("without a reason")));
    }

    #[test]
    fn unused_suppression_is_a_finding() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/foo.rs",
            "// chopim-lint: allow(determinism) -- nothing here\nfn f() {}\n",
        )]);
        let diags = ws.run();
        assert_eq!(diags.len(), 1);
        assert!(diags[0].msg.contains("unused suppression"));
    }

    #[test]
    fn unknown_pass_is_a_finding() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/foo.rs",
            "// chopim-lint: allow(speling) -- oops\nfn f() { let m = HashMap::new(); }\n",
        )]);
        let diags = ws.run();
        assert!(diags.iter().any(|d| d.msg.contains("unknown pass")));
    }
}
