//! The analysis passes.
//!
//! Each pass is a pure function from the scanned workspace to raw
//! findings; the driver in [`crate`] applies suppressions afterwards.
//! Pass scopes, boundary rules, and exemption lists are data at the top
//! of this module — the analyzer encodes the workspace's architecture,
//! so changing the architecture means changing these tables (reviewed
//! like any other invariant).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Tok;
use crate::scan::ScannedFile;
use crate::Diagnostic;

/// Crates whose `src/` trees feed `SimReport` and therefore carry the
/// determinism / snapshot / coldpath obligations.
const SIM_SCOPES: [&str; 4] = [
    "crates/core/src/",
    "crates/dram/src/",
    "crates/nda/src/",
    "crates/host/src/",
];

/// Shard-side files: nothing here may name a front-end-owned type or
/// module (PR 4's ownership split).
const SHARD_SIDE: [&str; 2] = ["crates/core/src/shard.rs", "crates/core/src/sched.rs"];

/// Front-end files: nothing here may name a shard-internal type.
const FRONT_SIDE: [&str; 3] = [
    "crates/core/src/system.rs",
    "crates/core/src/runtime.rs",
    "crates/core/src/par.rs",
];

/// Identifiers a shard-side file must not mention: front-end-owned
/// types plus the front-end module names themselves. Cross-boundary
/// traffic goes through the typed messages in `exchange.rs`
/// (which re-exports the shared vocabulary: `OpHandle`, handle codecs).
const FRONT_OWNED: [&str; 14] = [
    "Runtime",
    "Session",
    "ChopimSystem",
    "ChopimConfig",
    "OooCore",
    "OooCoreState",
    "MergeQueue",
    "Waitable",
    "ShardPool",
    "StreamId",
    "SimReport",
    "runtime",
    "system",
    "par",
];

/// Identifiers a front-end file must not mention: shard-internal
/// machinery (the front-end holds `ChannelShard`s as opaque units).
const SHARD_OWNED: [&str; 5] = [
    "HostMc",
    "NdaRankController",
    "NdaFsm",
    "NdaTickResult",
    "Issued",
];

/// Structs exempt from the snapshot-completeness field check: codec
/// transport types whose fields are cursor state, not machine state.
const SNAPSHOT_EXEMPT: [&str; 2] = ["ByteWriter", "ByteReader"];

fn in_sim_scope(path: &str) -> bool {
    SIM_SCOPES.iter().any(|s| path.starts_with(s))
}

fn push(diags: &mut Vec<Diagnostic>, file: &str, line: u32, pass: &'static str, msg: String) {
    diags.push(Diagnostic {
        file: file.to_string(),
        line,
        pass,
        msg,
    });
}

// --- determinism -----------------------------------------------------

/// Flag constructs whose behavior can differ between two runs of the
/// same binary on the same inputs: unordered-container iteration order,
/// wall-clock time, thread identity, pointer values, and
/// NaN-unstable / order-sensitive float folds.
pub fn determinism(files: &[ScannedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files.iter().filter(|f| in_sim_scope(&f.path)) {
        let mut seen: BTreeSet<(u32, &'static str)> = BTreeSet::new();
        for i in 0..f.toks.len() {
            let line = f.toks[i].line;
            if f.line_in_test(line) || f.tok_in_use(i) {
                continue;
            }
            let mut hit: Option<(&'static str, String)> = None;
            match &f.toks[i].tok {
                Tok::Ident(s) if s == "HashMap" || s == "HashSet" => {
                    hit = Some((
                        "unordered",
                        format!(
                            "`{s}` on a simulation path: iteration order is nondeterministic; \
                             use BTreeMap/BTreeSet or a sorted Vec, or allow with a reason \
                             explaining why iteration order cannot reach SimReport"
                        ),
                    ));
                }
                Tok::Ident(s) if s == "Instant" || s == "SystemTime" => {
                    hit = Some((
                        "wallclock",
                        format!("`{s}`: wall-clock time on a simulation path breaks replay"),
                    ));
                }
                Tok::Ident(s)
                    if s == "std"
                        && f.ident(i + 3) == Some("time")
                        && matches!(f.toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                        && matches!(f.toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':'))) =>
                {
                    hit = Some((
                        "wallclock",
                        "`std::time` on a simulation path breaks replay".to_string(),
                    ));
                }
                Tok::Ident(s)
                    if s == "thread"
                        && f.ident(i + 3) == Some("current")
                        && matches!(f.toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                        && matches!(f.toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':'))) =>
                {
                    hit = Some((
                        "threadid",
                        "`thread::current`: thread identity is schedule-dependent".to_string(),
                    ));
                }
                Tok::Ident(s) if s == "partial_cmp" => {
                    hit = Some((
                        "floatord",
                        "`partial_cmp` on a simulation path: NaN makes the order \
                         input-dependent; use `total_cmp` or integer keys"
                            .to_string(),
                    ));
                }
                Tok::Ident(s)
                    if (s == "sum" || s == "product")
                        && matches!(f.toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                        && matches!(f.toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
                        && matches!(f.toks.get(i + 3).map(|t| &t.tok), Some(Tok::Punct('<')))
                        && matches!(f.ident(i + 4), Some("f32") | Some("f64")) =>
                {
                    hit = Some((
                        "floatacc",
                        format!(
                            "float `{s}` fold: accumulation order changes the result; \
                             fold in a fixed order or use integer accumulation"
                        ),
                    ));
                }
                Tok::Str(s) if s.contains("{:p}") => {
                    hit = Some((
                        "ptrfmt",
                        "pointer formatting (`{:p}`): addresses differ across runs (ASLR)"
                            .to_string(),
                    ));
                }
                _ => {}
            }
            if let Some((kind, msg)) = hit {
                if seen.insert((line, kind)) {
                    push(&mut diags, &f.path, line, "determinism", msg);
                }
            }
        }
    }
    diags
}

// --- snapshot completeness -------------------------------------------

/// Is this fn part of a codec path, and on which side?
fn codec_side(name: &str) -> Option<bool> {
    if name == "snapshot" {
        return Some(true);
    }
    if name == "resume" {
        return Some(false);
    }
    match name.split('_').next() {
        Some("encode") => Some(true),
        Some("decode") => Some(false),
        _ => None,
    }
}

/// Cross-check every snapshot-covered struct: each named field must be
/// mentioned in at least one encode body *and* one decode body.
///
/// A struct is covered when it owns a codec fn (impl self type), or
/// when codec fns on *both* sides name it in their signatures (the
/// free-fn codec idiom, `encode_meter(m: &TenantReport, ..)`). A
/// signature mention on one side only does not cover — that is the
/// config-input idiom (`resume(cfg: ChopimConfig, ..)` consumes the
/// config, it does not serialize it). The mention check runs against
/// the struct's own attributed codec bodies per side, falling back to
/// the pooled bodies of all codec fns for a side with no attributed fn
/// (a record encoded inline by its container's `encode_state`).
pub fn snapshot(files: &[ScannedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Struct index over sim-scoped files.
    let mut structs: Vec<(usize, usize)> = Vec::new(); // (file, struct)
    for (fi, f) in files.iter().enumerate() {
        if !in_sim_scope(&f.path) {
            continue;
        }
        for (si, s) in f.structs.iter().enumerate() {
            if !s.in_test && !SNAPSHOT_EXEMPT.contains(&s.name.as_str()) {
                structs.push((fi, si));
            }
        }
    }
    let struct_names: BTreeSet<&str> = structs
        .iter()
        .map(|&(fi, si)| files[fi].structs[si].name.as_str())
        .collect();

    // Codec fns with their mentioned-ident sets.
    struct CodecFn<'a> {
        encode_side: bool,
        self_ty: Option<&'a str>,
        sig_idents: BTreeSet<&'a str>,
        body_idents: BTreeSet<&'a str>,
    }
    let mut codec_fns: Vec<CodecFn<'_>> = Vec::new();
    for f in files.iter().filter(|f| in_sim_scope(&f.path)) {
        for fun in &f.fns {
            if fun.in_test || fun.body.0 >= fun.body.1 {
                continue;
            }
            let Some(encode_side) = codec_side(&fun.name) else {
                continue;
            };
            let collect = |range: (usize, usize)| -> BTreeSet<&str> {
                f.toks[range.0..range.1]
                    .iter()
                    .filter_map(|t| match &t.tok {
                        Tok::Ident(s) => Some(s.as_str()),
                        _ => None,
                    })
                    .collect()
            };
            codec_fns.push(CodecFn {
                encode_side,
                self_ty: fun.self_ty.as_deref(),
                sig_idents: collect(fun.sig),
                body_idents: collect(fun.body),
            });
        }
    }

    // Pooled fallback sets.
    let pooled: [BTreeSet<&str>; 2] = {
        let mut enc = BTreeSet::new();
        let mut dec = BTreeSet::new();
        for c in &codec_fns {
            let set = if c.encode_side { &mut enc } else { &mut dec };
            set.extend(c.body_idents.iter().copied());
        }
        [enc, dec]
    };

    // Attribute codec fns to structs they name: by impl self type, and
    // by signature mention (free-fn codecs). Tracked separately so the
    // coverage rule can demand sig attribution on both sides.
    let mut self_attr: BTreeMap<&str, [Vec<usize>; 2]> = BTreeMap::new();
    let mut sig_attr: BTreeMap<&str, [Vec<usize>; 2]> = BTreeMap::new();
    for (ci, c) in codec_fns.iter().enumerate() {
        let side = usize::from(!c.encode_side);
        if let Some(ty) = c.self_ty {
            if struct_names.contains(ty) {
                self_attr.entry(ty).or_default()[side].push(ci);
            }
        }
        for id in c.sig_idents.iter() {
            if struct_names.contains(id) && c.self_ty != Some(id) {
                sig_attr.entry(id).or_default()[side].push(ci);
            }
        }
    }

    for &(fi, si) in &structs {
        let s = &files[fi].structs[si];
        let name = s.name.as_str();
        let self_a = self_attr.get(name);
        let sig_a = sig_attr.get(name);
        let covered = self_a.is_some_and(|a| !a[0].is_empty() || !a[1].is_empty())
            || sig_a.is_some_and(|a| !a[0].is_empty() && !a[1].is_empty());
        if !covered {
            continue; // not snapshot-covered
        }
        let attr: [Vec<usize>; 2] = [0, 1].map(|side| {
            let mut v: Vec<usize> = Vec::new();
            if let Some(a) = self_a {
                v.extend(&a[side]);
            }
            if let Some(a) = sig_a {
                v.extend(&a[side]);
            }
            v
        });
        for (field, line) in &s.fields {
            for (side, side_name) in [(0usize, "encode"), (1, "decode")] {
                let mentioned = if attr[side].is_empty() {
                    pooled[side].contains(field.as_str())
                } else {
                    attr[side]
                        .iter()
                        .any(|&ci| codec_fns[ci].body_idents.contains(field.as_str()))
                };
                if !mentioned {
                    push(
                        &mut diags,
                        &files[fi].path,
                        *line,
                        "snapshot",
                        format!(
                            "field `{field}` of snapshot-covered struct `{}` is not mentioned \
                             in any {side_name} body: serialize it (and bump the CHSS version) \
                             or allow with a reason explaining how resume rebuilds it",
                            s.name
                        ),
                    );
                }
            }
        }
    }
    diags
}

// --- shard boundary --------------------------------------------------

/// Enforce the front-end / shard ownership split: shard-side files must
/// not name front-end types or modules, front-end files must not name
/// shard-internal machinery. `exchange.rs` (the typed message layer) is
/// the one place both vocabularies may meet.
pub fn boundary(files: &[ScannedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files {
        let (forbidden, other_side): (&[&str], &str) = if SHARD_SIDE.contains(&f.path.as_str()) {
            (&FRONT_OWNED, "front-end")
        } else if FRONT_SIDE.contains(&f.path.as_str()) {
            (&SHARD_OWNED, "shard")
        } else {
            continue;
        };
        let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
        for i in 0..f.toks.len() {
            let line = f.toks[i].line;
            if f.line_in_test(line) {
                continue;
            }
            if let Tok::Ident(s) = &f.toks[i].tok {
                if forbidden.contains(&s.as_str()) && seen.insert((line, s.clone())) {
                    push(
                        &mut diags,
                        &f.path,
                        line,
                        "boundary",
                        format!(
                            "`{s}` is {other_side}-owned: cross-boundary traffic must go \
                             through the typed messages in exchange.rs, not direct naming"
                        ),
                    );
                }
            }
        }
    }
    diags
}

// --- cold-path hygiene -----------------------------------------------

/// Must this fn be `#[cold]`? Codec, snapshot, trace, and fault bodies
/// are never on the fast loop, but without `#[cold]` their code is laid
/// out inside it (PR 7 measured a 12% fast-loop loss from layout alone).
fn wants_cold(name: &str) -> bool {
    if name == "snapshot" || name == "resume" {
        return true;
    }
    if matches!(name.split('_').next(), Some("encode") | Some("decode")) {
        return true;
    }
    name.split('_')
        .any(|s| s == "snapshot" || s == "trace" || s == "fault" || s == "faults")
}

/// Flag cold-path fns (codec/snapshot/trace/fault) missing `#[cold]`.
pub fn coldpath(files: &[ScannedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files.iter().filter(|f| in_sim_scope(&f.path)) {
        for fun in &f.fns {
            if fun.in_test || fun.body.0 >= fun.body.1 || fun.has_cold {
                continue;
            }
            if wants_cold(&fun.name) {
                push(
                    &mut diags,
                    &f.path,
                    fun.line,
                    "coldpath",
                    format!(
                        "cold-path fn `{}` lacks #[cold]: codec/snapshot/trace/fault bodies \
                         laid out in the fast loop cost throughput (12% measured in PR 7)",
                        fun.name
                    ),
                );
            }
        }
    }
    diags
}

// --- forbid(unsafe_code) ---------------------------------------------

/// Every workspace crate root must carry `#![forbid(unsafe_code)]` (the
/// only unsafe in the tree is the counting allocator in
/// `crates/core/tests/alloc_steady_state.rs`, a separate test crate).
pub fn forbid_unsafe(files: &[ScannedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files {
        let is_root = f.path.starts_with("crates/")
            && (f.path.ends_with("/src/lib.rs") || f.path.ends_with("/src/main.rs"))
            && f.path.matches('/').count() == 3;
        if !is_root {
            continue;
        }
        let has = f.inner_attrs.iter().any(|s| s == "forbid")
            && f.inner_attrs.iter().any(|s| s == "unsafe_code");
        if !has {
            push(
                &mut diags,
                &f.path,
                1,
                "unsafe",
                "crate root lacks #![forbid(unsafe_code)]".to_string(),
            );
        }
    }
    diags
}
