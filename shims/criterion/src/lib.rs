//! Offline shim for the subset of the `criterion` 0.5 API this workspace
//! uses: `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Reports the median of a
//! handful of wall-clock samples — enough to track simulator throughput,
//! with none of criterion's statistics engine. See `shims/README.md`.

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: also calibrates iterations-per-sample so each sample
        // runs long enough for the clock to resolve it.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut per_iter = Duration::from_nanos(100);
        while Instant::now() < warm_deadline {
            f(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed / b.iters as u32;
            }
        }

        let budget = self.measurement_time.as_nanos() / self.sample_size as u128;
        let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, u32::MAX as u128) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!("{id:<40} median {median:>12.1} ns/iter   (min {lo:.1}, max {hi:.1}, {n} samples x {iters} iters)",
            n = self.sample_size);
        self
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`; the result is kept alive to stop
    /// trivial dead-code elimination (callers typically also `black_box`).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}
