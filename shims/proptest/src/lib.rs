//! Offline shim for the subset of the `proptest` 1.x API this workspace
//! uses: the `proptest!` macro, integer-range / `any` / tuple strategies,
//! `prop::collection::vec`, `prop::option::of`, `prop::sample::select`,
//! and the `prop_assert*` macros.
//!
//! Cases are generated deterministically from a hash of the test name and
//! the case index, so failures reproduce exactly. There is no shrinking:
//! a failing case panics with the generated inputs still bound, and the
//! assertion message carries the context. See `shims/README.md`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`ProptestConfig::with_cases(n)`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of test-case values. Strategies are sampled by reference so
/// composite strategies (vec, tuples, option) can reuse their elements.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Floats: half-open ranges only (`RangeInclusive` sampling is ill-defined
// at the upper endpoint and unused in this workspace).
macro_rules! impl_float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Full-domain strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Constant strategy (`Just(v)`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection-size spec: an exact length or a half-open range of lengths.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(inner)` — `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_ratio(3, 4) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    use super::*;

    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    /// `prop::sample::select(choices)` — uniform pick from a non-empty list.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select: empty choice list");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.choices[rng.gen_range(0..self.choices.len())].clone()
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test name, mixed with the
/// case index, so runs reproduce without a persistence file.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Fresh RNG for one generated case.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(case_seed(test_name, case))
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Reject the current case. NOTE: expands to `continue` targeting the
/// generated per-case loop, so it must be called from the top level of a
/// `proptest!` body (which is how this workspace uses it), not from
/// inside a nested loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The `proptest!` block: expands each contained
/// `fn name(arg in strategy, ...) { body }` into a plain `#[test]` that
/// samples `cases` deterministic inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::case_seed("t", 3), crate::case_seed("t", 3));
        assert_ne!(crate::case_seed("t", 3), crate::case_seed("t", 4));
        assert_ne!(crate::case_seed("a", 0), crate::case_seed("b", 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn shim_generates_in_range(x in 3u64..10, v in prop::collection::vec(0usize..5, 1..4)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn shim_select_and_option(r in prop::sample::select(vec![2usize, 4, 8]), o in prop::option::of(1u64..600)) {
            prop_assert!([2, 4, 8].contains(&r));
            if let Some(v) = o {
                prop_assert!((1..600).contains(&v));
            }
        }

        #[test]
        fn shim_tuples(pair in (any::<u8>(), 1u64..2048), flag in any::<bool>()) {
            let (_, hi) = pair;
            prop_assert!((1..2048).contains(&hi));
            let _: bool = flag;
        }
    }
}
