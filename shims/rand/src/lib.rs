//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The core generator is xoshiro256++ seeded through splitmix64, so every
//! stream is fully determined by its seed and identical on every platform.
//! See `shims/README.md` for scope and caveats.

/// Uniform sampling of a value from a range, used by [`Rng::gen_range`].
///
/// Mirrors the shape of `rand::distributions::uniform::SampleRange` just
/// enough for `rng.gen_range(lo..hi)` call sites to compile unchanged.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Minimal core-RNG trait: everything else is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// The user-facing extension trait (`use rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open, as in real `rand`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // Compare in the 53-bit unit-interval domain to avoid rounding bias
        // at p = 0 and p = 1.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(
            numerator <= denominator,
            "gen_ratio: {numerator}/{denominator} > 1"
        );
        // Unbiased multiply-shift trick (Lemire).
        let x = self.next_u32() as u64;
        ((x * denominator as u64) >> 32) < numerator as u64 || (numerator == denominator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding trait (`use rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Debiased modulo: rejection-sample the top remainder zone.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return ((self.start as $wide).wrapping_add((v % span) as $wide)) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // Inclusive span computed in the wide domain so ranges
                // ending at T::MAX don't overflow (count = span + 1 only
                // overflows for the full-u64 domain, special-cased).
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let count = span + 1;
                let zone = u64::MAX - (u64::MAX - count + 1) % count;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return ((start as $wide).wrapping_add((v % count) as $wide)) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_range {
    ($($t:ty, $bits:expr);* $(;)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, 24; f64, 53);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Not the same stream as the real `StdRng` (ChaCha12) —
    /// reproducible only within this workspace.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state words (for checkpointing; pair with
        /// [`from_state`](Self::from_state)).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from raw state words captured by
        /// [`state`](Self::state). An all-zero state is invalid for
        /// xoshiro and falls back to the zero seed.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                return Self::from_u64(0);
            }
            StdRng { s }
        }

        fn from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding method.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(
                    chunk
                        .try_into()
                        .expect("chunks_exact(8) yields 8-byte chunks"),
                );
            }
            if s.iter().all(|&w| w == 0) {
                return Self::from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_u64(state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: Vec<u64> = (0..8).map(|_| a.gen_range(0..1 << 40)).collect();
        let other: Vec<u64> = (0..8).map(|_| c.gen_range(0..1 << 40)).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(1e-7..1.0);
            assert!((1e-7..1.0).contains(&f));
            let d: f64 = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&d));
        }
    }

    #[test]
    fn inclusive_ranges_at_type_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5u8..=u8::MAX);
            assert!(v >= 5);
            let v = rng.gen_range(u8::MIN..=u8::MAX);
            let _ = v;
            let v = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = v;
            let v = rng.gen_range(u64::MAX - 1..=u64::MAX);
            assert!(v >= u64::MAX - 1);
            let v = rng.gen_range(-3i8..=i8::MAX);
            assert!(v >= -3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| rng.gen_ratio(1, 1)));
        assert!((0..100).all(|_| !rng.gen_ratio(0, 1)));
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 3)).count();
        assert!((3000..3700).contains(&hits), "got {hits}");
    }
}
