//! The paper's §IV case study: SVRG logistic regression where the host
//! runs the stochastic inner loop and the NDAs summarize the full dataset,
//! in all three execution modes (host-only / accelerated / delayed
//! update).
//!
//! The three modes form a one-axis [`chopim::exp`] sweep with a custom
//! executor (the optimizer, not a raw simulation window), run in parallel
//! by [`SweepRunner`].
//!
//! Run with:
//! ```sh
//! cargo run --release --example svrg_collaboration
//! ```

use chopim::ml::svrg::{self, SvrgMode};
use chopim::ml::{Dataset, SvrgConfig, SvrgTimeModel};
use chopim::prelude::*;

fn main() {
    // cifar10 stand-in (see DESIGN.md substitutions), scaled for a demo.
    // A small CHOPIM_BENCH_CYCLES (the CI smoke knob) shrinks the dataset
    // so the simulator-calibration pass stays fast.
    let quick = chopim::exp::bench_window(u64::MAX) < 50_000;
    let (n, d, classes) = if quick {
        (256usize, 64usize, 4usize)
    } else {
        (1024usize, 256usize, 10usize)
    };
    let ds = Dataset::synthetic(n, d, classes, 7);

    println!("calibrating step times on the simulator (8 NDAs)...");
    let tm = SvrgTimeModel::measure(n, d, classes, 4);
    println!(
        "  NDA summarization : {:.3} ms (serial) / {:.3} ms (concurrent)",
        tm.nda_summarize_s * 1e3,
        tm.nda_summarize_concurrent_s * 1e3
    );
    println!("  host summarization: {:.3} ms", tm.host_summarize_s * 1e3);
    println!("  host inner iter   : {:.2} us", tm.host_iter_s * 1e6);

    let opt = svrg::optimum_loss(&ds, 1e-3, 200);
    let cfg = SvrgConfig {
        epoch: n / 4,
        lr: 0.04,
        momentum: 0.9,
        lambda: 1e-3,
        max_outer: 40,
        seed: 42,
    };

    let modes = [
        ("HostOnly", SvrgMode::HostOnly),
        ("Accelerated", SvrgMode::Accelerated),
        ("DelayedUpdate", SvrgMode::DelayedUpdate),
    ];
    let specs = SweepBuilder::new(ScenarioSpec::with_window(0))
        .axis("mode", modes, |_, _| {})
        .build();
    let result = SweepRunner::parallel().run(&specs, |spec| {
        let mode = *spec.value::<SvrgMode>("mode").expect("mode axis");
        svrg::run(mode, &ds, cfg, &tm)
    });

    println!("\nreference optimum loss: {opt:.5}\n");
    println!(
        "{:<14} {:>12} {:>14} {:>16}",
        "mode", "final loss", "wall-clock", "time to 2e-2 gap"
    );
    for p in result.iter() {
        let trace = &p.result;
        let (t_end, l_end) = *trace.points.last().expect("trace has points");
        let conv = trace
            .time_to_converge(opt, 2e-2)
            .map(|t| format!("{:.2} ms", t * 1e3))
            .unwrap_or_else(|| "not reached".into());
        println!(
            "{:<14} {:>12.5} {:>11.2} ms {:>16}",
            p.spec.label,
            l_end,
            t_end * 1e3,
            conv
        );
    }
    println!(
        "\nThe delayed-update variant overlaps the host inner loop with NDA \
         summarization (one epoch of staleness) — the paper's 2x collaboration \
         result (Fig. 15)."
    );
}
