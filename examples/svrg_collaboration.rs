//! The paper's §IV case study: SVRG logistic regression where the host
//! runs the stochastic inner loop and the NDAs summarize the full dataset,
//! in all three execution modes (host-only / accelerated / delayed
//! update).
//!
//! Run with:
//! ```sh
//! cargo run --release --example svrg_collaboration
//! ```

use chopim::ml::svrg::{self, SvrgMode};
use chopim::ml::{Dataset, SvrgConfig, SvrgTimeModel};

fn main() {
    // cifar10 stand-in (see DESIGN.md substitutions), scaled for a demo.
    let (n, d, classes) = (1024usize, 256usize, 10usize);
    let ds = Dataset::synthetic(n, d, classes, 7);

    println!("calibrating step times on the simulator (8 NDAs)...");
    let tm = SvrgTimeModel::measure(n, d, classes, 4);
    println!(
        "  NDA summarization : {:.3} ms (serial) / {:.3} ms (concurrent)",
        tm.nda_summarize_s * 1e3,
        tm.nda_summarize_concurrent_s * 1e3
    );
    println!("  host summarization: {:.3} ms", tm.host_summarize_s * 1e3);
    println!("  host inner iter   : {:.2} us", tm.host_iter_s * 1e6);

    let opt = svrg::optimum_loss(&ds, 1e-3, 200);
    let cfg = SvrgConfig {
        epoch: n / 4,
        lr: 0.04,
        momentum: 0.9,
        lambda: 1e-3,
        max_outer: 40,
        seed: 42,
    };
    println!("\nreference optimum loss: {opt:.5}\n");
    println!("{:<14} {:>12} {:>14} {:>16}", "mode", "final loss", "wall-clock", "time to 2e-2 gap");
    for mode in [SvrgMode::HostOnly, SvrgMode::Accelerated, SvrgMode::DelayedUpdate] {
        let trace = svrg::run(mode, &ds, cfg, &tm);
        let (t_end, l_end) = *trace.points.last().expect("trace has points");
        let conv = trace
            .time_to_converge(opt, 2e-2)
            .map(|t| format!("{:.2} ms", t * 1e3))
            .unwrap_or_else(|| "not reached".into());
        println!(
            "{:<14} {:>12.5} {:>11.2} ms {:>16}",
            mode.label(),
            l_end,
            t_end * 1e3,
            conv
        );
    }
    println!(
        "\nThe delayed-update variant overlaps the host inner loop with NDA \
         summarization (one epoch of staleness) — the paper's 2x collaboration \
         result (Fig. 15)."
    );
}
