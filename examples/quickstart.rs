//! Quickstart: build the Chopim machine, run a vector operation on the
//! NDAs while a host mix hammers the same DRAM devices, and read the
//! metrics the paper's figures plot.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chopim::prelude::*;

fn main() {
    // The paper's Table II machine: DDR4-2400, 2 channels x 2 ranks,
    // bank partitioning (one reserved bank per rank), next-rank
    // prediction for NDA writes, host running the most memory-intensive
    // SPEC mix.
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(1).expect("mix1 exists")),
        ..ChopimConfig::default()
    });

    // Allocate two shared vectors. The runtime colors their system rows so
    // every element pair lands in the same rank (§III-A), letting each
    // per-rank NDA work on its local share with zero copies.
    let n = 1 << 16;
    let x = sys.runtime.vector(n, Sharing::Shared);
    let y = sys.runtime.vector(n, Sharing::Shared);
    sys.runtime
        .write_vector(x, &(0..n).map(|i| i as f32).collect::<Vec<_>>());

    // One coarse-grain COPY instruction per rank (Table I ISA), submitted
    // through a session — the per-tenant context every op belongs to. The
    // launch itself travels over the memory channel as control-register
    // writes, and the returned handle is what you wait on.
    let sess = sys.runtime.default_session();
    let op = sess
        .elementwise(&mut sys.runtime, Opcode::Copy, vec![], vec![x], Some(y))
        .submit();

    // Tick the whole machine — host cores, FR-FCFS controllers, NDA
    // controllers and their host-side shadow FSMs — until the op retires.
    // `drive` also accepts op sets, a session, or Waitable::Quiescent.
    let cycles = sys.drive(op, 10_000_000);
    assert!(sys.runtime.op_done(op));
    assert_eq!(sys.runtime.read_vector(y)[1234], 1234.0);

    let report = sys.report();
    println!("COPY of {n} f32 finished in {cycles} DRAM cycles, concurrent with mix1:");
    println!("{report}");
    println!(
        "\nreplicated FSMs in sync: {} (the §III-D mechanism that makes \
         DDR4-attached NDAs possible)",
        sys.fsm_in_sync()
    );

    // Every paper figure is a *sweep* over points like the one above. The
    // experiment subsystem makes that declarative: describe the point
    // once, name the axes, and run the grid across cores — results come
    // back in grid order, bit-identical to a serial run.
    let mut base = ScenarioSpec::with_window(chopim::exp::bench_window(50_000));
    base.cfg.mix = Some(MixId::new(1).expect("mix1 exists"));
    base.workload = Workload::elementwise(Opcode::Copy, 1 << 16);
    let specs = SweepBuilder::new(base)
        .axis(
            "banks",
            [("shared", 0usize), ("partitioned", 1)],
            |s, &r| s.cfg.reserved_banks = r,
        )
        .axis(
            "policy",
            [
                ("issue-if-idle", WriteIssuePolicy::IssueIfIdle),
                ("next-rank", WriteIssuePolicy::NextRankPredict),
            ],
            |s, &p| s.cfg.policy = p,
        )
        .build();
    let sweep = SweepRunner::parallel().run_reports(&specs);
    println!("\nmini-sweep (COPY vs mix1): banks x policy");
    for p in sweep.iter() {
        println!(
            "  {:<26} host IPC {:>6.3}   NDA util {:>6.3}",
            p.spec.label, p.result.host_ipc, p.result.nda_bw_utilization
        );
    }
}
