//! Quickstart: build the Chopim machine, run a vector operation on the
//! NDAs while a host mix hammers the same DRAM devices, and read the
//! metrics the paper's figures plot.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chopim::prelude::*;

fn main() {
    // The paper's Table II machine: DDR4-2400, 2 channels x 2 ranks,
    // bank partitioning (one reserved bank per rank), next-rank
    // prediction for NDA writes, host running the most memory-intensive
    // SPEC mix.
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(1).expect("mix1 exists")),
        ..ChopimConfig::default()
    });

    // Allocate two shared vectors. The runtime colors their system rows so
    // every element pair lands in the same rank (§III-A), letting each
    // per-rank NDA work on its local share with zero copies.
    let n = 1 << 16;
    let x = sys.runtime.vector(n, Sharing::Shared);
    let y = sys.runtime.vector(n, Sharing::Shared);
    sys.runtime.write_vector(x, &(0..n).map(|i| i as f32).collect::<Vec<_>>());

    // One coarse-grain COPY instruction per rank (Table I ISA). The launch
    // itself travels over the memory channel as control-register writes.
    let op = sys.runtime.launch_elementwise(
        Opcode::Copy,
        vec![],
        vec![x],
        Some(y),
        LaunchOpts::default(),
    );

    // Tick the whole machine — host cores, FR-FCFS controllers, NDA
    // controllers and their host-side shadow FSMs — until the op retires.
    let cycles = sys.run_until_op(op, 10_000_000);
    assert!(sys.runtime.op_done(op));
    assert_eq!(sys.runtime.read_vector(y)[1234], 1234.0);

    let report = sys.report();
    println!("COPY of {n} f32 finished in {cycles} DRAM cycles, concurrent with mix1:");
    println!("{report}");
    println!(
        "\nreplicated FSMs in sync: {} (the §III-D mechanism that makes \
         DDR4-attached NDAs possible)",
        sys.fsm_in_sync()
    );
}
