//! Colocation study: what happens to a host-only application mix when an
//! NDA workload moves in next door — under each of Chopim's write-issue
//! policies. This is the scenario the paper's bank partitioning +
//! throttling mechanisms target (Figs. 11-12).
//!
//! The study is one [`chopim::exp`] sweep: a host-alone baseline point
//! plus one point per policy, all run in parallel by [`SweepRunner`].
//!
//! Run with:
//! ```sh
//! cargo run --release --example colocation
//! ```

use chopim::prelude::*;

fn main() {
    let policies = [
        WriteIssuePolicy::IssueIfIdle,
        WriteIssuePolicy::stochastic(1, 4),
        WriteIssuePolicy::stochastic(1, 16),
        WriteIssuePolicy::NextRankPredict,
    ];

    let window = chopim::exp::bench_window(300_000);
    let mut base = ScenarioSpec::with_window(window);
    base.cfg.mix = Some(MixId::new(4).expect("mix4 exists"));

    // One axis: the host-alone baseline, then the write-intensive COPY
    // (stressing read/write turnarounds) under each policy.
    let mut cases: Vec<(String, Option<WriteIssuePolicy>)> = vec![("host alone".into(), None)];
    cases.extend(policies.map(|p| (format!("+ COPY, {}", p.label()), Some(p))));
    let specs = SweepBuilder::new(base)
        .axis("scenario", cases, |s, policy| match policy {
            None => s.workload = Workload::HostOnly,
            Some(p) => {
                s.cfg.policy = *p;
                s.workload = Workload::elementwise(Opcode::Copy, 1 << 16);
            }
        })
        .build();
    let result = SweepRunner::parallel().run_reports(&specs);

    println!("host mix4 colocated with a COPY-running NDA ({window} DRAM cycles):\n");
    for p in result.iter() {
        println!(
            "{:<28} host IPC {:>6.3}   NDA util {:>6.3}   turnarounds {:>7}",
            p.spec.label, p.result.host_ipc, p.result.nda_bw_utilization, p.result.dram.turnarounds
        );
    }
    println!(
        "\nNext-rank prediction keeps most of the host's IPC while the NDAs \
         still capture a large share of idle rank bandwidth — Chopim's core \
         colocation claim."
    );
}
