//! Colocation study: what happens to a host-only application mix when an
//! NDA workload moves in next door — under each of Chopim's write-issue
//! policies. This is the scenario the paper's bank partitioning +
//! throttling mechanisms target (Figs. 11-12).
//!
//! Run with:
//! ```sh
//! cargo run --release --example colocation
//! ```

use chopim::prelude::*;

fn run_case(policy: Option<WriteIssuePolicy>, reserved: usize) -> SimReport {
    let mut sys = ChopimSystem::new(ChopimConfig {
        mix: Some(MixId::new(4).expect("mix4 exists")),
        policy: policy.unwrap_or(WriteIssuePolicy::NextRankPredict),
        reserved_banks: reserved,
        ..ChopimConfig::default()
    });
    if let Some(_p) = policy {
        // Write-intensive COPY stresses read/write turnarounds.
        let n = 1 << 16;
        let x = sys.runtime.vector(n, Sharing::Shared);
        let y = sys.runtime.vector(n, Sharing::Shared);
        sys.runtime.write_vector(x, &vec![1.0; n]);
        sys.run_relaunching(300_000, |rt| {
            rt.launch_elementwise(Opcode::Copy, vec![], vec![x], Some(y), LaunchOpts::default())
        });
    } else {
        sys.run(300_000);
    }
    sys.report()
}

fn main() {
    println!("host mix4 colocated with a COPY-running NDA (300k DRAM cycles):\n");
    let solo = run_case(None, 1);
    println!(
        "{:<28} host IPC {:>6.3}   NDA util {:>6.3}   turnarounds {:>7}",
        "host alone", solo.host_ipc, solo.nda_bw_utilization, solo.dram.turnarounds
    );
    for policy in [
        WriteIssuePolicy::IssueIfIdle,
        WriteIssuePolicy::stochastic(1, 4),
        WriteIssuePolicy::stochastic(1, 16),
        WriteIssuePolicy::NextRankPredict,
    ] {
        let r = run_case(Some(policy), 1);
        println!(
            "{:<28} host IPC {:>6.3}   NDA util {:>6.3}   turnarounds {:>7}",
            format!("+ COPY, {}", policy.label()),
            r.host_ipc,
            r.nda_bw_utilization,
            r.dram.turnarounds
        );
    }
    println!(
        "\nNext-rank prediction keeps most of the host's IPC while the NDAs \
         still capture a large share of idle rank bandwidth — Chopim's core \
         colocation claim."
    );
}
