//! Layout explorer: visualize how Chopim's address-mapping stack places
//! data — the Skylake-style XOR hash (Fig. 4a), the bank-partition remap
//! (Fig. 4b), OS page colors, and the rank alignment that lets NDAs share
//! operands with the host (Fig. 3).
//!
//! Run with:
//! ```sh
//! cargo run --release --example layout_explorer
//! ```

use chopim::dram::DramConfig;
use chopim::mapping::{presets, AddressMapper, PartitionedMapping};

fn main() {
    let cfg = DramConfig::table_ii();
    let hashed = presets::skylake_like(&cfg);
    let part = PartitionedMapping::new(&cfg, presets::skylake_like(&cfg), 1);

    println!(
        "Table II machine: {} B capacity, {} B system rows, {} colors\n",
        cfg.capacity_bytes(),
        cfg.system_row_bytes(),
        1u32 << hashed.rank_channel_row_mask().count_ones()
    );

    println!("consecutive cache lines under the hashed mapping (Fig. 4a):");
    println!("{:>10}  ch rk bg bk {:>6} col", "PA", "row");
    for line in 0..8u64 {
        let d = hashed.map_pa(line * 64);
        println!(
            "{:>#10x}  {:>2} {:>2} {:>2} {:>2} {:>6} {:>3}",
            line * 64,
            d.channel,
            d.rank,
            d.bankgroup,
            d.bank,
            d.row,
            d.col
        );
    }

    println!("\nbank partitioning (Fig. 4b): one reserved bank per rank");
    println!(
        "  host space: 0 .. {:#x} ({} GiB)",
        part.shared_base(),
        part.host_capacity_bytes() >> 30
    );
    println!(
        "  shared space: {:#x} .. (top bank id >= {})",
        part.shared_base(),
        part.first_reserved()
    );
    let host_pa = 0x1234_5670u64 & !63;
    let shared_pa = part.shared_base() + 0x20_0040;
    let dh = part.map_pa(host_pa);
    let ds = part.map_pa(shared_pa & !63);
    println!(
        "  host PA   {host_pa:#x} -> {dh}  (bank {} < {})",
        dh.flat_bank(cfg.banks_per_group),
        part.first_reserved()
    );
    println!(
        "  shared PA {shared_pa:#x} -> {ds}  (bank {} >= {})",
        ds.flat_bank(cfg.banks_per_group),
        part.first_reserved()
    );

    // Rank alignment: two same-colored system rows interleave (ch, rk)
    // identically — the paper's operand-locality requirement.
    println!("\nrank alignment of same-colored system rows (Fig. 3):");
    let row_a = 8u64; // two rows with equal color bits under the preset
    let row_b = row_a + (1 << 12);
    let sysrow = cfg.system_row_bytes();
    let mut aligned = true;
    for k in (0..sysrow / 64).step_by(97) {
        let da = part.map_pa(row_a * sysrow + k * 64);
        let db = part.map_pa(row_b * sysrow + k * 64);
        aligned &= (da.channel, da.rank) == (db.channel, db.rank);
    }
    println!(
        "  system rows {row_a} and {row_b}: every line pair lands in the same \
         (channel, rank): {aligned}"
    );
    assert!(aligned, "colored rows must be rank aligned");
}
