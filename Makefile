# Convenience entry points. Everything here is plain cargo underneath so
# local runs and CI are identical.

.PHONY: all test perf perf-check perf-verbose perf-micro lockstep lockstep-shard lockstep-snapshot chaos docs examples lint lint-chopim checked-release

all: test

test:
	cargo build --release && cargo test -q

# Simulation-throughput harness: runs the scenario matrix with the naive
# and event-horizon loops, writes BENCH_chopim.json.
# Window: CHOPIM_BENCH_CYCLES (default 60000). Subset a run with
# `cargo run --release -p chopim-perf -- --filter <regex>`.
perf:
	cargo run --release -p chopim-perf

# Same, plus the CI regression gate against the checked-in baseline.
# The gate requires the baseline's window, so pin it (exactly what CI runs).
perf-check:
	CHOPIM_BENCH_CYCLES=200000 cargo run --release -p chopim-perf -- --check BENCH_baseline.json

# Harness with per-phase simulator-cost counters (sched scans, memo
# hits/misses, ready_at calls) printed per scenario — the first stop when
# a perf regression needs attributing.
perf-verbose:
	cargo run --release -p chopim-perf --features perf-counters -- --verbose

# Micro-benchmarks for the busy-path kernels (ready_at / plan_access /
# scheduler pick) and the cross-shard exchange kernels (flat-fifo
# handoff, merge-queue vs heap), via the vendored criterion shim.
# Optional companion to `make perf`.
perf-micro:
	cargo bench -p chopim-dram -p chopim-core

# Fast-forward vs naive-loop equivalence (bit-identical SimReports).
lockstep:
	cargo test --release -p chopim-exp --test ff_lockstep

# Channel-sharded executor determinism: serial vs 2-thread vs 4-thread
# shard execution must produce bit-identical SimReports.
lockstep-shard:
	cargo test --release -p chopim-exp --test shard_lockstep

# Snapshot/resume + trace lockstep: resuming a mid-run image is
# bit-identical under every engine mode; captured traces replay to
# identical DramStats (what the CI `equivalence` job runs).
lockstep-snapshot:
	cargo test --release -p chopim-exp --test snapshot_lockstep

# The fault plane end to end (the CI `chaos` job): active-plan lockstep
# across thread counts/loops + snapshot-under-faults, recovery liveness
# properties (no lost ops, capped backoff), and malformed-input fuzzing
# of the CHSS/CHTR readers.
chaos:
	cargo test --release -p chopim-exp --test fault_lockstep
	cargo test --release -p chopim-core --test fault_recovery_props
	cargo test --release -p chopim-dram --test malformed_input_props
	cargo test --release -p chopim-core --test malformed_snapshot_props

# Workspace docs with warnings denied (undocumented public items and
# broken intra-doc links fail) plus the doctests — the CI `docs` job.
docs:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
	cargo test --doc

# Build and run every example with CI-sized windows (what the CI
# `examples` job does) — catches runtime-API drift in examples fast.
examples:
	cargo build --release --examples
	CHOPIM_BENCH_CYCLES=5000 cargo run --release --example quickstart
	CHOPIM_BENCH_CYCLES=5000 cargo run --release --example colocation
	CHOPIM_BENCH_CYCLES=5000 cargo run --release --example layout_explorer
	CHOPIM_BENCH_CYCLES=5000 cargo run --release --example svrg_collaboration
	CHOPIM_BENCH_CYCLES=5000 cargo run --release -p chopim-core --example count_ticks
	CHOPIM_BENCH_CYCLES=5000 cargo run --release -p chopim-core --example probe

lint:
	cargo clippy --all-targets -- -D warnings && cargo fmt --check
	$(MAKE) lint-chopim

# Project-specific source lints (see docs/LINTS.md): determinism,
# snapshot completeness, shard-boundary discipline, cold-path
# annotations, and forbid(unsafe_code) — enforced by crates/lint.
lint-chopim:
	cargo run --release -p chopim-lint -- .

# Lockstep suites under a release profile with debug-assertions and
# overflow-checks on: every debug_assert oracle (ready-index vs full
# scan, horizon conservatism) and arithmetic overflow fires at release
# optimisation levels too.
checked-release:
	cargo test --profile release-checked -p chopim-exp --test ff_lockstep --test shard_lockstep --test snapshot_lockstep
