# Convenience entry points. Everything here is plain cargo underneath so
# local runs and CI are identical.

.PHONY: all test perf perf-check lockstep lint

all: test

test:
	cargo build --release && cargo test -q

# Simulation-throughput harness: runs the scenario matrix with the naive
# and event-horizon loops, writes BENCH_chopim.json.
# Window: CHOPIM_BENCH_CYCLES (default 60000).
perf:
	cargo run --release -p chopim-perf

# Same, plus the CI regression gate against the checked-in baseline.
# The gate requires the baseline's window, so pin it (exactly what CI runs).
perf-check:
	CHOPIM_BENCH_CYCLES=200000 cargo run --release -p chopim-perf -- --check BENCH_baseline.json

# Fast-forward vs naive-loop equivalence (bit-identical SimReports).
lockstep:
	cargo test --release -p chopim-exp --test ff_lockstep

lint:
	cargo clippy --all-targets -- -D warnings && cargo fmt --check
